//! Versioned, checksummed checkpoint snapshots.
//!
//! A snapshot captures the *complete deterministic simulation state* at a
//! quiescent point of the parallel driver — the top of a worker iteration,
//! immediately after `begin_cycle` has drained every deferred buffer
//! (cross-shard mailboxes, pending pushes, pending frees). At that point
//! every in-flight packet sits in exactly one router input queue, keyed by
//! its *global* tile id, so a snapshot written by N workers restores
//! bit-identically under any other worker count.
//!
//! # File format (version 1)
//!
//! All integers are little-endian. Floats are stored as their IEEE-754
//! bit patterns (`to_bits`), never through a decimal round-trip. Per-tile
//! PU and memory counter blocks are LEB128 varints ([`put_vu64`]) — the
//! values are mostly small and those two blocks dominate a dense-grid
//! snapshot's size; everything else is fixed-width.
//!
//! ```text
//! magic            8 B   b"MUCHSNAP"
//! version          u32   SNAPSHOT_VERSION
//! config_hash      u64   FNV-1a over the canonical JSON of the config,
//!                        with host-side knobs (time_leap, active_list,
//!                        checkpoint_*, telemetry) reset to defaults —
//!                        resuming under a different leap/worklist/thread
//!                        /telemetry setting is allowed and bit-identical
//! app name         len-prefixed UTF-8
//! width, height, pus_per_tile, planes   u32 each
//! task_types       u8
//! kernels          u32
//! kernel           u32   kernel being executed at the snapshot
//! cycle            u64   NoC cycle the resumed run re-enters at
//! base             u64   first cycle of the current kernel
//! n_chunks         u32   worker chunks (writer's thread count)
//! chunk × n        len-prefixed worker state (see `WorkerChunk`)
//! checksum         u64   [`SnapshotHasher`] (word-parallel FNV-1a) over
//!                        every preceding byte
//! ```
//!
//! **Compatibility rule**: a snapshot is readable iff its `version` equals
//! [`SNAPSHOT_VERSION`] and its `config_hash`, application name, grid
//! geometry, and task-type count match the resuming configuration exactly.
//! Any model change that alters simulated behavior must bump the version;
//! there is no cross-version migration — re-run from the start instead.

use crate::app::{OutMsg, ScheduledSend};
use crate::counters::PuCounters;
use crate::digest::Fnv;
use crate::error::SimError;
use crate::frames::FrameLog;
use muchisim_config::SystemConfig;
use muchisim_mem::MemCounters;
use muchisim_noc::{LatencyStats, NocCounters, Packet, Payload, ReduceOp};
use std::path::Path;

/// Magic bytes identifying a MuchiSim snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MUCHSNAP";

/// Current snapshot format version. Bump on any change to the format *or*
/// to simulated behavior (golden-trace re-bless); old versions are
/// rejected with a clean error, never migrated.
pub const SNAPSHOT_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Little-endian write helpers (public: application crates use these in
// their `snapshot_tile` hooks).
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u16` (little-endian).
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` (little-endian).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f32` as its IEEE-754 bit pattern (bit-exact).
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    put_u32(buf, v.to_bits());
}

/// Appends an `f64` as its IEEE-754 bit pattern (bit-exact).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `bool` as one byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// Appends a length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32s(buf: &mut Vec<u8>, vs: &[u32]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u32(buf, v);
    }
}

/// Appends a length-prefixed `u64` slice.
pub fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u64(buf, v);
    }
}

/// Appends a length-prefixed `f32` slice (bit patterns).
pub fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_f32(buf, v);
    }
}

/// Appends a length-prefixed `f64` slice (bit patterns).
pub fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_f64(buf, v);
    }
}

/// Appends a length-prefixed `bool` slice (one byte each).
pub fn put_bools(buf: &mut Vec<u8>, vs: &[bool]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_bool(buf, v);
    }
}

/// Appends a `u64` as a LEB128 varint: 7 value bits per byte, low group
/// first, high bit set on every byte but the last. Counter blocks use
/// this (a tile's counters are mostly small), which shrinks dense-grid
/// snapshots several-fold; monotonically large values like femtosecond
/// clocks stay fixed-width `u64`.
pub fn put_vu64(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

// ---------------------------------------------------------------------
// Bounds-checked little-endian reader.
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice. Every
/// accessor returns a descriptive error instead of panicking on
/// truncated or corrupt input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` byte (anything non-zero is `true`).
    pub fn bool_(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }

    /// Reads a LEB128 varint `u64` (see [`put_vu64`]).
    pub fn vu64(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(format!("varint overflows u64 at offset {}", self.pos));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(format!(
                    "varint longer than 10 bytes at offset {}",
                    self.pos
                ));
            }
        }
    }

    /// Reads a length, guarding against lengths that exceed the bytes
    /// actually present (corrupt files must error, not allocate).
    fn len_capped(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes.max(1)) > self.remaining() {
            return Err(format!(
                "corrupt length {n} at offset {} exceeds {} remaining bytes",
                self.pos,
                self.remaining()
            ));
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.len_capped(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|e| format!("invalid UTF-8: {e}"))
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.len_capped(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.len_capped(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn f32s(&mut self) -> Result<Vec<f32>, String> {
        let n = self.len_capped(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let n = self.len_capped(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed `bool` slice.
    pub fn bools(&mut self) -> Result<Vec<bool>, String> {
        let n = self.len_capped(1)?;
        (0..n).map(|_| self.bool_()).collect()
    }

    /// Asserts that every byte was consumed.
    pub fn expect_end(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing bytes after record", self.remaining()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Config identity.
// ---------------------------------------------------------------------

/// FNV-1a over the canonical JSON of `cfg` with the host-side knobs that
/// are *allowed* to differ between the checkpointing and the resuming run
/// (time leaping, active lists, telemetry, and the checkpoint options
/// themselves) reset to fixed values. Everything that shapes simulated
/// behavior — geometry, latencies, queue capacities, traffic, verbosity,
/// frame interval — participates.
pub(crate) fn config_hash(cfg: &SystemConfig) -> u64 {
    let mut c = cfg.clone();
    c.time_leap = true;
    c.active_list = true;
    c.checkpoint_every = None;
    c.checkpoint_path = None;
    c.checkpoint_resume = false;
    c.telemetry = Default::default();
    let json = serde_json::to_string(&c).expect("config serializes");
    let mut h = Fnv::new();
    h.bytes(json.as_bytes());
    h.finish()
}

// ---------------------------------------------------------------------
// Payload / packet / message codecs (hand-rolled: OutMsg and
// ScheduledSend carry no serde derives, and floats must not round-trip
// through decimal).
// ---------------------------------------------------------------------

fn reduce_tag(op: Option<ReduceOp>) -> u8 {
    match op {
        None => 0,
        Some(ReduceOp::SumF32) => 1,
        Some(ReduceOp::SumU32) => 2,
        Some(ReduceOp::MinU32) => 3,
        Some(ReduceOp::MinF32) => 4,
        Some(ReduceOp::MaxU32) => 5,
    }
}

fn reduce_from_tag(tag: u8) -> Result<Option<ReduceOp>, String> {
    Ok(match tag {
        0 => None,
        1 => Some(ReduceOp::SumF32),
        2 => Some(ReduceOp::SumU32),
        3 => Some(ReduceOp::MinU32),
        4 => Some(ReduceOp::MinF32),
        5 => Some(ReduceOp::MaxU32),
        other => return Err(format!("unknown reduce-op tag {other}")),
    })
}

pub(crate) fn put_payload(buf: &mut Vec<u8>, p: &Payload) {
    put_u32s(buf, p.as_slice());
}

fn read_payload(r: &mut ByteReader<'_>) -> Result<Payload, String> {
    Ok(Payload::from_slice(&r.u32s()?))
}

pub(crate) fn put_packet(buf: &mut Vec<u8>, p: &Packet) {
    put_u32(buf, p.src);
    put_u32(buf, p.dst);
    put_u8(buf, p.task);
    put_u8(buf, p.vc);
    put_u16(buf, p.flits);
    put_u64(buf, p.ready_at);
    put_u64(buf, p.born);
    put_u8(buf, reduce_tag(p.reduce));
    put_payload(buf, &p.payload);
}

pub(crate) fn read_packet(r: &mut ByteReader<'_>) -> Result<Packet, String> {
    Ok(Packet {
        src: r.u32()?,
        dst: r.u32()?,
        task: r.u8()?,
        vc: r.u8()?,
        flits: r.u16()?,
        ready_at: r.u64()?,
        born: r.u64()?,
        reduce: reduce_from_tag(r.u8()?)?,
        payload: read_payload(r)?,
    })
}

pub(crate) fn put_out_msg(buf: &mut Vec<u8>, m: &OutMsg) {
    put_u32(buf, m.dst);
    put_u8(buf, m.task);
    put_u64(buf, m.at_pu_cycle);
    put_u8(buf, reduce_tag(m.reduce));
    put_payload(buf, &m.payload);
}

fn read_out_msg(r: &mut ByteReader<'_>) -> Result<OutMsg, String> {
    Ok(OutMsg {
        dst: r.u32()?,
        task: r.u8()?,
        at_pu_cycle: r.u64()?,
        reduce: reduce_from_tag(r.u8()?)?,
        payload: read_payload(r)?,
    })
}

pub(crate) fn put_scheduled_send(buf: &mut Vec<u8>, s: &ScheduledSend) {
    put_u64(buf, s.cycle);
    put_u32(buf, s.dst);
    put_u8(buf, s.task);
    put_u8(buf, reduce_tag(s.reduce));
    put_payload(buf, &s.payload);
}

fn read_scheduled_send(r: &mut ByteReader<'_>) -> Result<ScheduledSend, String> {
    Ok(ScheduledSend {
        cycle: r.u64()?,
        dst: r.u32()?,
        task: r.u8()?,
        reduce: reduce_from_tag(r.u8()?)?,
        payload: read_payload(r)?,
    })
}

pub(crate) fn put_pu_counters(buf: &mut Vec<u8>, c: &PuCounters) {
    for v in [
        c.int_ops,
        c.fp_ops,
        c.ctrl_ops,
        c.loads,
        c.stores,
        c.msgs_sent,
        c.tasks_executed,
        c.busy_cycles,
        c.cq_stall_cycles,
        c.app_ops,
    ] {
        put_vu64(buf, v);
    }
}

fn read_pu_counters(r: &mut ByteReader<'_>) -> Result<PuCounters, String> {
    Ok(PuCounters {
        int_ops: r.vu64()?,
        fp_ops: r.vu64()?,
        ctrl_ops: r.vu64()?,
        loads: r.vu64()?,
        stores: r.vu64()?,
        msgs_sent: r.vu64()?,
        tasks_executed: r.vu64()?,
        busy_cycles: r.vu64()?,
        cq_stall_cycles: r.vu64()?,
        app_ops: r.vu64()?,
    })
}

pub(crate) fn put_mem_counters(buf: &mut Vec<u8>, c: &MemCounters) {
    for v in [
        c.sram_reads,
        c.sram_writes,
        c.sram_read_bits,
        c.sram_write_bits,
        c.tag_accesses,
        c.cache_hits,
        c.cache_misses,
        c.writebacks,
        c.dram_line_reads,
        c.dram_line_writes,
        c.prefetch_fills,
        c.prefetch_hits,
        c.queue_reads,
        c.queue_writes,
    ] {
        put_vu64(buf, v);
    }
}

fn read_mem_counters(r: &mut ByteReader<'_>) -> Result<MemCounters, String> {
    Ok(MemCounters {
        sram_reads: r.vu64()?,
        sram_writes: r.vu64()?,
        sram_read_bits: r.vu64()?,
        sram_write_bits: r.vu64()?,
        tag_accesses: r.vu64()?,
        cache_hits: r.vu64()?,
        cache_misses: r.vu64()?,
        writebacks: r.vu64()?,
        dram_line_reads: r.vu64()?,
        dram_line_writes: r.vu64()?,
        prefetch_fills: r.vu64()?,
        prefetch_hits: r.vu64()?,
        queue_reads: r.vu64()?,
        queue_writes: r.vu64()?,
    })
}

pub(crate) fn put_noc_counters(buf: &mut Vec<u8>, c: &NocCounters) {
    put_u64(buf, c.injected);
    put_u64(buf, c.ejected);
    put_u64(buf, c.msg_hops);
    for v in c.flit_hops_by_class {
        put_u64(buf, v);
    }
    put_f64(buf, c.onchip_flit_mm);
    put_u64(buf, c.collisions);
    put_u64(buf, c.backpressure);
    put_u64(buf, c.eject_stalls);
    put_u64(buf, c.reduce_combines);
}

fn read_noc_counters(r: &mut ByteReader<'_>) -> Result<NocCounters, String> {
    let mut c = NocCounters {
        injected: r.u64()?,
        ejected: r.u64()?,
        msg_hops: r.u64()?,
        ..Default::default()
    };
    for v in c.flit_hops_by_class.iter_mut() {
        *v = r.u64()?;
    }
    c.onchip_flit_mm = r.f64()?;
    c.collisions = r.u64()?;
    c.backpressure = r.u64()?;
    c.eject_stalls = r.u64()?;
    c.reduce_combines = r.u64()?;
    Ok(c)
}

pub(crate) fn put_latency(buf: &mut Vec<u8>, s: &LatencyStats) {
    put_u64(buf, s.count);
    put_u64(buf, s.total_cycles);
    put_u64(buf, s.max_cycles);
    for v in s.buckets {
        put_u64(buf, v);
    }
}

fn read_latency(r: &mut ByteReader<'_>) -> Result<LatencyStats, String> {
    let mut s = LatencyStats {
        count: r.u64()?,
        total_cycles: r.u64()?,
        max_cycles: r.u64()?,
        ..Default::default()
    };
    for v in s.buckets.iter_mut() {
        *v = r.u64()?;
    }
    Ok(s)
}

pub(crate) fn put_frame_log(buf: &mut Vec<u8>, log: &FrameLog) {
    put_u64(buf, log.interval_cycles);
    put_u32(buf, log.frames.len() as u32);
    for f in &log.frames {
        put_u64(buf, f.index);
        put_u64(buf, f.start_cycle);
        put_u64(buf, f.tasks_delta);
        put_u64(buf, f.injected_delta);
        put_u64(buf, f.ejected_delta);
        for pairs in [&f.router_busy, &f.pu_busy, &f.iq_occupancy] {
            put_u32(buf, pairs.len() as u32);
            for &(t, v) in pairs.iter() {
                put_u32(buf, t);
                put_u32(buf, v);
            }
        }
    }
}

fn read_frame_log(r: &mut ByteReader<'_>) -> Result<FrameLog, String> {
    let interval = r.u64()?;
    let mut log = FrameLog::new(interval);
    let n = r.len_capped(40)?;
    for _ in 0..n {
        let mut f = crate::frames::Frame {
            index: r.u64()?,
            start_cycle: r.u64()?,
            tasks_delta: r.u64()?,
            injected_delta: r.u64()?,
            ejected_delta: r.u64()?,
            ..Default::default()
        };
        for pairs in [&mut f.router_busy, &mut f.pu_busy, &mut f.iq_occupancy] {
            let m = r.len_capped(8)?;
            for _ in 0..m {
                pairs.push((r.u32()?, r.u32()?));
            }
        }
        log.frames.push(f);
    }
    Ok(log)
}

// ---------------------------------------------------------------------
// Snapshot records (crate-internal; the engine assembles and applies
// them).
// ---------------------------------------------------------------------

/// One tile's complete dynamic state.
#[derive(Debug, Clone)]
pub(crate) struct TileRecord {
    /// Global tile id.
    pub tile: u32,
    /// Whether the tile's init task for the current kernel is still due.
    pub init_pending: bool,
    /// Router/PU busy cycles accumulated in the current (open) frame.
    pub pu_busy_frame: u32,
    /// TSU round-robin pointer.
    pub rr_last: u8,
    /// Per-PU clocks (absolute PU-domain femtoseconds/cycles).
    pub pu_clock: Vec<u64>,
    /// PU event counters.
    pub pu: PuCounters,
    /// Memory event counters.
    pub mem: MemCounters,
    /// Cache model state as canonical JSON (`None` for scratchpad tiles).
    pub cache: Option<String>,
    /// Input queues: per task type, queued payloads in FIFO order.
    pub iqs: Vec<Vec<Payload>>,
    /// Channel queues: per task type, queued messages in FIFO order.
    pub cqs: Vec<Vec<OutMsg>>,
    /// Remaining (unconsumed) scheduled sends.
    pub scripted: Vec<ScheduledSend>,
    /// Application tile state (app-defined encoding).
    pub app: Vec<u8>,
}

/// Per-NoC-plane state contributed by one worker's shard (merged across
/// chunks at read time).
#[derive(Debug, Clone, Default)]
pub(crate) struct PlaneRecord {
    /// NoC counters (merged).
    pub counters: NocCounters,
    /// Latency histogram (merged).
    pub latency: LatencyStats,
    /// Queued packets: `(global tile, input port index, packet)` in FIFO
    /// order per queue.
    pub packets: Vec<(u32, u8, Packet)>,
    /// Busy output links: `(global tile, direction index, busy_until)`.
    pub links: Vec<(u32, u8, u64)>,
    /// Non-zero round-robin pointers: `(global tile, direction, value)`.
    pub rr: Vec<(u32, u8, u8)>,
    /// Non-zero per-frame router busy counts: `(global tile, count)`.
    pub busy_frame: Vec<(u32, u32)>,
}

/// Everything one worker owns, serialized independently and merged by
/// the reader.
#[derive(Debug, Clone)]
pub(crate) struct WorkerChunk {
    /// Maximum PU timestamp seen (femtoseconds), for the kernel barrier.
    pub max_pu_fs: u64,
    /// Tasks dispatched in the current (open) frame interval.
    pub frame_tasks: u64,
    /// Packets injected in the current frame interval.
    pub frame_injected: u64,
    /// Packets ejected in the current frame interval.
    pub frame_ejected: u64,
    /// This worker's captured frames.
    pub frames: FrameLog,
    /// Per-plane NoC state of this worker's shards.
    pub planes: Vec<PlaneRecord>,
    /// Tile records for this worker's slice.
    pub tiles: Vec<TileRecord>,
    /// Non-zero HBM channels owned by this worker: `(id, transactions)`.
    pub channels: Vec<(u32, u64)>,
}

impl WorkerChunk {
    /// Reference encoder. The live driver streams the same wire format
    /// through the engine's `encode_chunk_into` without building a
    /// `WorkerChunk`; this builder-based version survives as the
    /// debug-mode cross-check oracle and for round-trip tests.
    #[cfg_attr(not(any(test, debug_assertions)), allow(dead_code))]
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u64(&mut b, self.max_pu_fs);
        put_u64(&mut b, self.frame_tasks);
        put_u64(&mut b, self.frame_injected);
        put_u64(&mut b, self.frame_ejected);
        put_frame_log(&mut b, &self.frames);
        put_u32(&mut b, self.planes.len() as u32);
        for p in &self.planes {
            put_noc_counters(&mut b, &p.counters);
            put_latency(&mut b, &p.latency);
            put_u32(&mut b, p.packets.len() as u32);
            for (tile, port, pkt) in &p.packets {
                put_u32(&mut b, *tile);
                put_u8(&mut b, *port);
                put_packet(&mut b, pkt);
            }
            put_u32(&mut b, p.links.len() as u32);
            for &(tile, dir, until) in &p.links {
                put_u32(&mut b, tile);
                put_u8(&mut b, dir);
                put_u64(&mut b, until);
            }
            put_u32(&mut b, p.rr.len() as u32);
            for &(tile, dir, v) in &p.rr {
                put_u32(&mut b, tile);
                put_u8(&mut b, dir);
                put_u8(&mut b, v);
            }
            put_u32(&mut b, p.busy_frame.len() as u32);
            for &(tile, v) in &p.busy_frame {
                put_u32(&mut b, tile);
                put_u32(&mut b, v);
            }
        }
        put_u32(&mut b, self.tiles.len() as u32);
        for t in &self.tiles {
            put_u32(&mut b, t.tile);
            put_bool(&mut b, t.init_pending);
            put_u32(&mut b, t.pu_busy_frame);
            put_u8(&mut b, t.rr_last);
            put_u64s(&mut b, &t.pu_clock);
            put_pu_counters(&mut b, &t.pu);
            put_mem_counters(&mut b, &t.mem);
            match &t.cache {
                Some(json) => put_bytes(&mut b, json.as_bytes()),
                None => put_u32(&mut b, 0),
            }
            put_u32(&mut b, t.iqs.len() as u32);
            for q in &t.iqs {
                put_u32(&mut b, q.len() as u32);
                for p in q {
                    put_payload(&mut b, p);
                }
            }
            put_u32(&mut b, t.cqs.len() as u32);
            for q in &t.cqs {
                put_u32(&mut b, q.len() as u32);
                for m in q {
                    put_out_msg(&mut b, m);
                }
            }
            put_u32(&mut b, t.scripted.len() as u32);
            for s in &t.scripted {
                put_scheduled_send(&mut b, s);
            }
            put_bytes(&mut b, &t.app);
        }
        put_u32(&mut b, self.channels.len() as u32);
        for &(id, tx) in &self.channels {
            put_u32(&mut b, id);
            put_u64(&mut b, tx);
        }
        b
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<WorkerChunk, String> {
        let max_pu_fs = r.u64()?;
        let frame_tasks = r.u64()?;
        let frame_injected = r.u64()?;
        let frame_ejected = r.u64()?;
        let frames = read_frame_log(r)?;
        let n_planes = r.len_capped(1)?;
        let mut planes = Vec::with_capacity(n_planes);
        for _ in 0..n_planes {
            let counters = read_noc_counters(r)?;
            let latency = read_latency(r)?;
            let n_pkt = r.len_capped(8)?;
            let mut packets = Vec::with_capacity(n_pkt);
            for _ in 0..n_pkt {
                let tile = r.u32()?;
                let port = r.u8()?;
                packets.push((tile, port, read_packet(r)?));
            }
            let n_link = r.len_capped(13)?;
            let mut links = Vec::with_capacity(n_link);
            for _ in 0..n_link {
                links.push((r.u32()?, r.u8()?, r.u64()?));
            }
            let n_rr = r.len_capped(6)?;
            let mut rr = Vec::with_capacity(n_rr);
            for _ in 0..n_rr {
                rr.push((r.u32()?, r.u8()?, r.u8()?));
            }
            let n_bf = r.len_capped(8)?;
            let mut busy_frame = Vec::with_capacity(n_bf);
            for _ in 0..n_bf {
                busy_frame.push((r.u32()?, r.u32()?));
            }
            planes.push(PlaneRecord {
                counters,
                latency,
                packets,
                links,
                rr,
                busy_frame,
            });
        }
        let n_tiles = r.len_capped(30)?;
        let mut tiles = Vec::with_capacity(n_tiles);
        for _ in 0..n_tiles {
            let tile = r.u32()?;
            let init_pending = r.bool_()?;
            let pu_busy_frame = r.u32()?;
            let rr_last = r.u8()?;
            let pu_clock = r.u64s()?;
            let pu = read_pu_counters(r)?;
            let mem = read_mem_counters(r)?;
            let cache_bytes = r.bytes()?;
            let cache = if cache_bytes.is_empty() {
                None
            } else {
                Some(
                    String::from_utf8(cache_bytes.to_vec())
                        .map_err(|e| format!("cache blob not UTF-8: {e}"))?,
                )
            };
            let n_iq = r.len_capped(4)?;
            let mut iqs = Vec::with_capacity(n_iq);
            for _ in 0..n_iq {
                let m = r.len_capped(4)?;
                iqs.push(
                    (0..m)
                        .map(|_| read_payload(r))
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            let n_cq = r.len_capped(4)?;
            let mut cqs = Vec::with_capacity(n_cq);
            for _ in 0..n_cq {
                let m = r.len_capped(4)?;
                cqs.push(
                    (0..m)
                        .map(|_| read_out_msg(r))
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            let n_s = r.len_capped(14)?;
            let scripted = (0..n_s)
                .map(|_| read_scheduled_send(r))
                .collect::<Result<Vec<_>, _>>()?;
            let app = r.bytes()?.to_vec();
            tiles.push(TileRecord {
                tile,
                init_pending,
                pu_busy_frame,
                rr_last,
                pu_clock,
                pu,
                mem,
                cache,
                iqs,
                cqs,
                scripted,
                app,
            });
        }
        let n_ch = r.len_capped(12)?;
        let mut channels = Vec::with_capacity(n_ch);
        for _ in 0..n_ch {
            channels.push((r.u32()?, r.u64()?));
        }
        Ok(WorkerChunk {
            max_pu_fs,
            frame_tasks,
            frame_injected,
            frame_ejected,
            frames,
            planes,
            tiles,
            channels,
        })
    }
}

/// A fully parsed and merged snapshot, thread-count agnostic: every
/// record is keyed by global tile id.
#[derive(Debug)]
pub(crate) struct SnapshotData {
    /// Normalized config hash the snapshot was written under.
    pub config_hash: u64,
    /// Application name.
    pub app_name: String,
    /// Grid width in tiles.
    pub width: u32,
    /// Grid height in tiles.
    pub height: u32,
    /// PUs per tile.
    pub pus: u32,
    /// Physical NoC planes.
    pub planes: u32,
    /// Task types.
    pub task_types: u8,
    /// Kernel count of the application.
    pub kernels: u32,
    /// Kernel index being executed at the snapshot.
    pub kernel: u32,
    /// NoC cycle the resumed run re-enters at.
    pub cycle: u64,
    /// First cycle of the current kernel.
    pub base: u64,
    /// Global maximum PU timestamp (femtoseconds).
    pub max_pu_fs: u64,
    /// Open-frame task count (global sum).
    pub frame_tasks: u64,
    /// Open-frame injection count (global sum).
    pub frame_injected: u64,
    /// Open-frame ejection count (global sum).
    pub frame_ejected: u64,
    /// Merged frame log (all workers).
    pub frames: FrameLog,
    /// Merged per-plane NoC state.
    pub planes_state: Vec<PlaneRecord>,
    /// All tile records, sorted by tile id.
    pub tiles: Vec<TileRecord>,
    /// Non-zero HBM channels: `(id, transactions)`.
    pub channels: Vec<(u32, u64)>,
}

/// Encodes the fixed header (everything before the per-worker chunks).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_header(
    config_hash_v: u64,
    app_name: &str,
    width: u32,
    height: u32,
    pus: u32,
    planes: u32,
    task_types: u8,
    kernels: u32,
) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut b, SNAPSHOT_VERSION);
    put_u64(&mut b, config_hash_v);
    put_str(&mut b, app_name);
    put_u32(&mut b, width);
    put_u32(&mut b, height);
    put_u32(&mut b, pus);
    put_u32(&mut b, planes);
    put_u8(&mut b, task_types);
    put_u32(&mut b, kernels);
    b
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Word-parallel FNV-1a used for the whole-file snapshot checksum.
///
/// Eight independent 64-bit FNV-1a lanes each consume one `u64` word of a
/// 64-byte block (lane `i` seeds at `FNV_OFFSET ^ i`); [`finish`] zero-pads
/// the final partial block, folds the lanes together with plain FNV-1a
/// steps, and mixes in the total byte length so the padding cannot collide
/// with real trailing zeros. Classic FNV-1a advances one byte per
/// multiply, a serial dependency chain that caps it near one byte per
/// multiply latency; the eight lanes here are independent, so the hash
/// runs at word rate — which matters because the checksum covers every
/// byte of a file that reaches tens of megabytes on dense grids.
///
/// This hash defines the snapshot *file* checksum only. Digest checksums
/// ([`crate::digest`]) stay byte-serial FNV-1a: the committed golden
/// traces pin those values.
///
/// [`finish`]: SnapshotHasher::finish
#[derive(Debug)]
pub struct SnapshotHasher {
    lanes: [u64; 8],
    block: [u8; 64],
    fill: usize,
    total: u64,
}

impl SnapshotHasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        let mut lanes = [0u64; 8];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = FNV_OFFSET ^ i as u64;
        }
        SnapshotHasher {
            lanes,
            block: [0; 64],
            fill: 0,
            total: 0,
        }
    }

    fn compress(lanes: &mut [u64; 8], block: &[u8; 64]) {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let word = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = (*lane ^ word).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs `bytes`. Split points don't matter: any sequence of
    /// `update` calls over the same byte stream yields the same checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.fill > 0 {
            let take = (64 - self.fill).min(bytes.len());
            self.block[self.fill..self.fill + take].copy_from_slice(&bytes[..take]);
            self.fill += take;
            bytes = &bytes[take..];
            if self.fill < 64 {
                return; // everything fit in the still-partial block
            }
            let block = self.block;
            Self::compress(&mut self.lanes, &block);
            self.fill = 0;
        }
        let mut whole = bytes.chunks_exact(64);
        for block in &mut whole {
            Self::compress(&mut self.lanes, block.try_into().unwrap());
        }
        let tail = whole.remainder();
        self.block[..tail.len()].copy_from_slice(tail);
        self.fill = tail.len();
    }

    /// Pads the tail, folds the lanes and the total length, and returns
    /// the checksum.
    pub fn finish(mut self) -> u64 {
        if self.fill > 0 {
            let mut block = self.block;
            block[self.fill..].fill(0);
            Self::compress(&mut self.lanes, &block);
        }
        let mut h = FNV_OFFSET;
        for v in self
            .lanes
            .iter()
            .copied()
            .chain(std::iter::once(self.total))
        {
            h = (h ^ v).wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl Default for SnapshotHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Atomically writes a snapshot file: header + progress scalars +
/// length-prefixed worker chunks + trailing checksum, written to
/// `<path>.tmp` and renamed into place so an interrupted write never
/// leaves a torn file at `path`. Single pass: every section is hashed as
/// it is streamed out, so the multi-megabyte body is never assembled in
/// memory.
pub(crate) fn write_snapshot_file(
    path: &str,
    header: &[u8],
    kernel: u32,
    cycle: u64,
    base: u64,
    chunks: &[&[u8]],
) -> Result<(), String> {
    use std::io::Write;
    let mut prefix = Vec::with_capacity(header.len() + 24);
    prefix.extend_from_slice(header);
    put_u32(&mut prefix, kernel);
    put_u64(&mut prefix, cycle);
    put_u64(&mut prefix, base);
    put_u32(&mut prefix, chunks.len() as u32);

    let tmp = format!("{path}.tmp");
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating snapshot directory {}: {e}", parent.display()))?;
        }
    }
    let file = std::fs::File::create(&tmp).map_err(|e| format!("creating snapshot {tmp}: {e}"))?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
    let mut h = SnapshotHasher::new();
    let werr = |e: std::io::Error| format!("writing snapshot {tmp}: {e}");
    h.update(&prefix);
    w.write_all(&prefix).map_err(werr)?;
    for c in chunks {
        let len = (c.len() as u64).to_le_bytes();
        h.update(&len);
        w.write_all(&len).map_err(werr)?;
        h.update(c);
        w.write_all(c).map_err(werr)?;
    }
    w.write_all(&h.finish().to_le_bytes()).map_err(werr)?;
    w.into_inner()
        .map_err(|e| format!("writing snapshot {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming snapshot into {path}: {e}"))?;
    Ok(())
}

/// Reads, checksums, and parses a snapshot file into merged,
/// thread-count-agnostic state.
pub(crate) fn read_snapshot(path: &str) -> Result<SnapshotData, SimError> {
    let bytes = std::fs::read(path)
        .map_err(|e| SimError::Snapshot(format!("reading snapshot {path}: {e}")))?;
    parse_snapshot(&bytes).map_err(|e| SimError::Snapshot(format!("snapshot {path}: {e}")))
}

fn parse_snapshot(bytes: &[u8]) -> Result<SnapshotData, String> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 {
        return Err(format!("file too short ({} bytes)", bytes.len()));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err("bad magic (not a MuchiSim snapshot)".into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
        ));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let mut h = SnapshotHasher::new();
    h.update(body);
    let computed = h.finish();
    if computed != stored {
        return Err(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}): file is corrupt"
        ));
    }

    let mut r = ByteReader::new(&body[12..]);
    let config_hash = r.u64()?;
    let app_name = r.str_()?;
    let width = r.u32()?;
    let height = r.u32()?;
    let pus = r.u32()?;
    let planes = r.u32()?;
    let task_types = r.u8()?;
    let kernels = r.u32()?;
    let kernel = r.u32()?;
    let cycle = r.u64()?;
    let base = r.u64()?;
    let n_chunks = r.len_capped(8)?;

    let mut max_pu_fs = 0u64;
    let mut frame_tasks = 0u64;
    let mut frame_injected = 0u64;
    let mut frame_ejected = 0u64;
    let mut frames: Option<FrameLog> = None;
    let mut planes_state: Vec<PlaneRecord> = (0..planes).map(|_| PlaneRecord::default()).collect();
    let mut tiles: Vec<TileRecord> = Vec::new();
    let mut channels: Vec<(u32, u64)> = Vec::new();

    for i in 0..n_chunks {
        let len = r.u64()? as usize;
        if len > r.remaining() {
            return Err(format!(
                "chunk {i} claims {len} bytes, only {} left",
                r.remaining()
            ));
        }
        let mut cr = ByteReader::new(r.take(len)?);
        let chunk = WorkerChunk::decode(&mut cr).map_err(|e| format!("chunk {i}: {e}"))?;
        cr.expect_end().map_err(|e| format!("chunk {i}: {e}"))?;

        max_pu_fs = max_pu_fs.max(chunk.max_pu_fs);
        frame_tasks += chunk.frame_tasks;
        frame_injected += chunk.frame_injected;
        frame_ejected += chunk.frame_ejected;
        match frames.as_mut() {
            None => frames = Some(chunk.frames),
            Some(log) => log.merge(&chunk.frames),
        }
        if chunk.planes.len() != planes_state.len() {
            return Err(format!(
                "chunk {i} has {} planes, header says {}",
                chunk.planes.len(),
                planes_state.len()
            ));
        }
        for (dst, src) in planes_state.iter_mut().zip(chunk.planes) {
            dst.counters.merge(&src.counters);
            dst.latency.merge(&src.latency);
            dst.packets.extend(src.packets);
            dst.links.extend(src.links);
            dst.rr.extend(src.rr);
            dst.busy_frame.extend(src.busy_frame);
        }
        tiles.extend(chunk.tiles);
        channels.extend(chunk.channels);
    }
    r.expect_end()?;

    let total = width as u64 * height as u64;
    if tiles.len() as u64 != total {
        return Err(format!(
            "snapshot holds {} tile records for a {width}x{height} grid ({total} tiles)",
            tiles.len()
        ));
    }
    tiles.sort_unstable_by_key(|t| t.tile);
    for (i, t) in tiles.iter().enumerate() {
        if t.tile as u64 != i as u64 {
            return Err(format!(
                "tile record {i} has id {} (duplicate or gap)",
                t.tile
            ));
        }
    }
    channels.sort_unstable_by_key(|&(id, _)| id);

    Ok(SnapshotData {
        config_hash,
        app_name,
        width,
        height,
        pus,
        planes,
        task_types,
        kernels,
        kernel,
        cycle,
        base,
        max_pu_fs,
        frame_tasks,
        frame_injected,
        frame_ejected,
        frames: frames.unwrap_or_else(|| FrameLog::new(1)),
        planes_state,
        tiles,
        channels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_helpers_round_trip() {
        let mut b = Vec::new();
        put_u8(&mut b, 7);
        put_u16(&mut b, 300);
        put_u32(&mut b, 70_000);
        put_u64(&mut b, u64::MAX - 1);
        put_f32(&mut b, -0.125);
        put_f64(&mut b, std::f64::consts::PI);
        put_bool(&mut b, true);
        put_str(&mut b, "muchisim");
        put_u32s(&mut b, &[1, 2, 3]);
        put_u64s(&mut b, &[9]);
        put_f32s(&mut b, &[1.5, -2.5]);
        put_f64s(&mut b, &[0.1]);
        put_bools(&mut b, &[true, false]);
        let mut r = ByteReader::new(&b);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), -0.125);
        assert_eq!(r.f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert!(r.bool_().unwrap());
        assert_eq!(r.str_().unwrap(), "muchisim");
        assert_eq!(r.u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64s().unwrap(), vec![9]);
        assert_eq!(r.f32s().unwrap(), vec![1.5, -2.5]);
        assert_eq!(r.f64s().unwrap()[0].to_bits(), 0.1f64.to_bits());
        assert_eq!(r.bools().unwrap(), vec![true, false]);
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_absurd_lengths() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // length prefix claiming more data than present must error
        let mut b = Vec::new();
        put_u32(&mut b, u32::MAX);
        let mut r = ByteReader::new(&b);
        assert!(r.u32s().is_err());
        assert_eq!(ByteReader::new(&[]).remaining(), 0);
    }

    #[test]
    fn packet_codec_round_trips() {
        let pkt = Packet::unicast(3, 99, 2, Payload::from_slice(&[7, 8, 9]), 4)
            .with_reduce(ReduceOp::MaxU32)
            .ready_at(1234)
            .born(1200);
        let mut b = Vec::new();
        put_packet(&mut b, &pkt);
        let mut r = ByteReader::new(&b);
        let back = read_packet(&mut r).unwrap();
        assert_eq!(back, pkt);
        r.expect_end().unwrap();
    }

    #[test]
    fn reduce_tags_cover_all_ops() {
        for op in [
            None,
            Some(ReduceOp::SumF32),
            Some(ReduceOp::SumU32),
            Some(ReduceOp::MinU32),
            Some(ReduceOp::MinF32),
            Some(ReduceOp::MaxU32),
        ] {
            assert_eq!(reduce_from_tag(reduce_tag(op)).unwrap(), op);
        }
        assert!(reduce_from_tag(99).is_err());
    }

    #[test]
    fn worker_chunk_round_trips() {
        let chunk = WorkerChunk {
            max_pu_fs: 123_456,
            frame_tasks: 10,
            frame_injected: 3,
            frame_ejected: 2,
            frames: {
                let mut log = FrameLog::new(256);
                log.frames.push(crate::frames::Frame {
                    index: 0,
                    start_cycle: 0,
                    tasks_delta: 5,
                    router_busy: vec![(1, 2)],
                    ..Default::default()
                });
                log
            },
            planes: vec![PlaneRecord {
                counters: NocCounters {
                    injected: 9,
                    onchip_flit_mm: 1.25,
                    ..Default::default()
                },
                latency: {
                    let mut l = LatencyStats::default();
                    l.record(17);
                    l
                },
                packets: vec![(
                    4,
                    12,
                    Packet::unicast(0, 4, 1, Payload::from_slice(&[1]), 2).ready_at(7),
                )],
                links: vec![(4, 8, 99)],
                rr: vec![(4, 0, 3)],
                busy_frame: vec![(4, 11)],
            }],
            tiles: vec![TileRecord {
                tile: 0,
                init_pending: true,
                pu_busy_frame: 4,
                rr_last: 1,
                pu_clock: vec![100, 200],
                pu: PuCounters {
                    int_ops: 42,
                    ..Default::default()
                },
                mem: MemCounters {
                    sram_reads: 7,
                    ..Default::default()
                },
                cache: Some("{\"x\":1}".into()),
                iqs: vec![vec![Payload::from_slice(&[5])], vec![]],
                cqs: vec![
                    vec![],
                    vec![OutMsg {
                        dst: 3,
                        task: 1,
                        payload: Payload::from_slice(&[1, 2]),
                        at_pu_cycle: 88,
                        reduce: Some(ReduceOp::SumU32),
                    }],
                ],
                scripted: vec![ScheduledSend {
                    cycle: 50,
                    dst: 1,
                    task: 0,
                    payload: Payload::empty(),
                    reduce: None,
                }],
                app: vec![1, 2, 3],
            }],
            channels: vec![(2, 77)],
        };
        let bytes = chunk.encode();
        let mut r = ByteReader::new(&bytes);
        let back = WorkerChunk::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.max_pu_fs, chunk.max_pu_fs);
        assert_eq!(back.frames.frames, chunk.frames.frames);
        assert_eq!(back.planes[0].packets, chunk.planes[0].packets);
        assert_eq!(back.planes[0].counters, chunk.planes[0].counters);
        assert_eq!(back.planes[0].latency, chunk.planes[0].latency);
        assert_eq!(back.tiles[0].iqs, chunk.tiles[0].iqs);
        assert_eq!(back.tiles[0].cqs, chunk.tiles[0].cqs);
        assert_eq!(back.tiles[0].scripted, chunk.tiles[0].scripted);
        assert_eq!(back.tiles[0].cache, chunk.tiles[0].cache);
        assert_eq!(back.channels, chunk.channels);
    }

    #[test]
    fn config_hash_ignores_host_side_knobs() {
        let base = SystemConfig::builder().chiplet_tiles(4, 4).build().unwrap();
        let mut leap_off = base.clone();
        leap_off.time_leap = false;
        leap_off.active_list = false;
        let mut ckpt = base.clone();
        ckpt.checkpoint_every = Some(100);
        ckpt.checkpoint_path = Some("x.ckpt".into());
        let mut telem = base.clone();
        telem.telemetry.sample_every = Some(1024);
        telem.telemetry.wards.stall_cycles = Some(50_000);
        assert_eq!(config_hash(&base), config_hash(&leap_off));
        assert_eq!(config_hash(&base), config_hash(&ckpt));
        assert_eq!(config_hash(&base), config_hash(&telem));
        let other = SystemConfig::builder().chiplet_tiles(8, 8).build().unwrap();
        assert_ne!(config_hash(&base), config_hash(&other));
    }

    #[test]
    fn file_round_trip_and_corruption_detection() {
        let dir = std::env::temp_dir().join("muchisim-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join(format!("roundtrip-{}.ckpt", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let header = encode_header(0xABCD, "ping", 2, 2, 1, 1, 1, 1);
        let chunk = WorkerChunk {
            max_pu_fs: 1,
            frame_tasks: 0,
            frame_injected: 0,
            frame_ejected: 0,
            frames: FrameLog::new(256),
            planes: vec![PlaneRecord::default()],
            tiles: (0..4)
                .map(|i| TileRecord {
                    tile: i,
                    init_pending: false,
                    pu_busy_frame: 0,
                    rr_last: 0,
                    pu_clock: vec![0],
                    pu: PuCounters::default(),
                    mem: MemCounters::default(),
                    cache: None,
                    iqs: vec![vec![]],
                    cqs: vec![vec![]],
                    scripted: vec![],
                    app: vec![i as u8],
                })
                .collect(),
            channels: vec![],
        };
        write_snapshot_file(&path, &header, 0, 42, 7, &[chunk.encode().as_slice()]).unwrap();
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.app_name, "ping");
        assert_eq!(snap.cycle, 42);
        assert_eq!(snap.base, 7);
        assert_eq!(snap.tiles.len(), 4);
        assert_eq!(snap.tiles[3].app, vec![3]);

        // flip one byte in the middle: checksum must catch it
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let bad = format!("{path}.bad");
        std::fs::write(&bad, &bytes).unwrap();
        let err = read_snapshot(&bad).unwrap_err();
        assert!(matches!(err, SimError::Snapshot(_)), "{err:?}");
        assert!(err.to_string().contains("checksum"), "{err}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn snapshot_hasher_is_split_invariant_and_length_aware() {
        let data: Vec<u8> = (0..1000u32).flat_map(|v| v.to_le_bytes()).collect();
        let mut one = SnapshotHasher::new();
        one.update(&data);
        let whole = one.finish();
        // any update() split yields the same checksum as one shot
        for split in [0usize, 1, 7, 63, 64, 65, 512, data.len()] {
            let mut h = SnapshotHasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split} diverged");
        }
        let mut tiny = SnapshotHasher::new();
        for b in &data {
            tiny.update(std::slice::from_ref(b));
        }
        assert_eq!(tiny.finish(), whole, "byte-at-a-time diverged");
        // the length fold distinguishes zero padding from real zeros
        let mut padded = SnapshotHasher::new();
        padded.update(&data);
        padded.update(&[0u8; 3]);
        assert_ne!(padded.finish(), whole);
        // and a flipped bit anywhere changes the sum
        let mut corrupt = data.clone();
        corrupt[777] ^= 0x10;
        let mut h = SnapshotHasher::new();
        h.update(&corrupt);
        assert_ne!(h.finish(), whole);
    }
}
