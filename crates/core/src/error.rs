//! Simulation errors.

use crate::ward::WardReport;
use muchisim_config::ConfigError;
use std::error::Error;
use std::fmt;

/// An error constructing or running a simulation.
///
/// (`PartialEq` only, not `Eq`: [`SimError::Ward`] carries a partial
/// [`SimResult`](crate::SimResult), whose floating-point fields rule out
/// total equality.)
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The system configuration failed validation.
    Config(ConfigError),
    /// The application declares more task types than the engine supports.
    TooManyTaskTypes {
        /// Declared count.
        declared: u8,
    },
    /// The application's task-invocation graph has a cycle, which the
    /// paper forbids to avoid network deadlock (§III-B).
    CyclicTaskGraph,
    /// The simulation exceeded the configured cycle limit.
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// The application's result check failed.
    CheckFailed(
        /// The application's failure description.
        String,
    ),
    /// The statistics-frame spill file could not be created or written.
    FrameSpill(
        /// Description of the I/O failure.
        String,
    ),
    /// The NoC trace file could not be created or written.
    Trace(
        /// Description of the I/O failure.
        String,
    ),
    /// A checkpoint snapshot could not be written, read, or validated
    /// (I/O failure, corruption, version mismatch, or a configuration
    /// that does not match the snapshot).
    Snapshot(
        /// Description of the failure.
        String,
    ),
    /// A telemetry ward terminated the run. The report carries the
    /// tripped predicate, per-tile queue diagnostics, and the partial
    /// result up to the trip cycle.
    Ward(
        /// The structured trip report.
        Box<WardReport>,
    ),
    /// A telemetry metrics stream could not be created or written.
    Telemetry(
        /// Description of the I/O failure.
        String,
    ),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::TooManyTaskTypes { declared } => {
                write!(
                    f,
                    "{declared} task types exceed the supported maximum of 32"
                )
            }
            SimError::CyclicTaskGraph => {
                write!(
                    f,
                    "task-invocation graph has a cycle (network deadlock hazard)"
                )
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::CheckFailed(why) => write!(f, "result check failed: {why}"),
            SimError::FrameSpill(why) => write!(f, "frame spill failed: {why}"),
            SimError::Trace(why) => write!(f, "NoC trace failed: {why}"),
            SimError::Snapshot(why) => write!(f, "snapshot failed: {why}"),
            SimError::Ward(report) => write!(f, "{report}"),
            SimError::Telemetry(why) => write!(f, "telemetry stream failed: {why}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::CyclicTaskGraph.to_string().contains("cycle"));
        assert!(SimError::CheckFailed("boom".into())
            .to_string()
            .contains("boom"));
        let e = SimError::Config(ConfigError::NoPus);
        assert!(e.to_string().contains("invalid configuration"));
        assert!(SimError::Snapshot("bad magic".into())
            .to_string()
            .contains("snapshot failed: bad magic"));
        let ward = SimError::Ward(Box::new(crate::ward::WardReport {
            ward: "stall".into(),
            cycle: 10,
            detail: "wedged".into(),
            tiles: Vec::new(),
            snapshot_path: None,
            snapshot_error: None,
            partial: None,
        }));
        assert!(ward.to_string().contains("ward `stall` tripped"));
        assert!(SimError::Telemetry("no space".into())
            .to_string()
            .contains("telemetry stream failed"));
    }

    #[test]
    fn source_chains_config_error() {
        let e = SimError::Config(ConfigError::NoPus);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SimError::CyclicTaskGraph).is_none());
    }
}
