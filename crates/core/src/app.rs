//! The application-description API (paper §III-B).

use crate::counters::PuCounters;
use muchisim_mem::{AccessKind, ChannelState, TileMemory};
use muchisim_noc::{Payload, ReduceOp};
use serde::{Deserialize, Serialize};

/// Virtual address-space bytes reserved per tile.
///
/// The global address space is contiguous with each tile's PLM assigned a
/// chunk (paper §III-B); 16 MiB of virtual span per tile is far above any
/// physical PLM, so per-tile arrays never alias.
pub const TILE_SPAN_BYTES: u64 = 16 << 20;

/// Grid geometry visible to tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridInfo {
    /// Grid width in tiles.
    pub width: u32,
    /// Grid height in tiles.
    pub height: u32,
    /// Total tiles.
    pub total_tiles: u32,
    /// PUs per tile.
    pub pus_per_tile: u32,
}

impl GridInfo {
    /// Base virtual address of `tile`'s chunk of the global address space.
    pub fn tile_base(&self, tile: u32) -> u64 {
        tile as u64 * TILE_SPAN_BYTES
    }

    /// The virtual address of element `local_index` (of `elem_bytes`-sized
    /// elements) within `tile`'s copy of logical array `array_id`.
    ///
    /// Arrays are laid out consecutively in the tile's chunk, each given a
    /// fixed 2 MiB region — a simple deterministic layout matching the
    /// paper's per-tile scatter of every dataset array.
    pub fn array_addr(&self, tile: u32, array_id: u32, local_index: u64, elem_bytes: u64) -> u64 {
        self.tile_base(tile) + array_id as u64 * (2 << 20) + local_index * elem_bytes
    }
}

/// Software-configurable DUT parameters an application may override in its
/// `config_` hook (paper §III-B "Configuration functions").
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SoftwareConfig {
    /// Per-task-type input-queue capacity overrides (task id, messages).
    pub iq_capacity_override: Vec<(u8, u32)>,
    /// Task ids to prioritize, highest first (switches the TSU to the
    /// priority policy when non-empty).
    pub priority_tasks: Vec<u8>,
}

/// A pre-scheduled NoC injection: a packet the engine injects for a tile
/// at a fixed NoC cycle, bypassing the PU/channel-queue path entirely.
///
/// This is the workload-generation primitive behind synthetic traffic and
/// trace replay (the `muchisim-traffic` crate): the injection schedule is
/// *data* computed before the run, so the tile's PU stays free to drain
/// deliveries at full speed and injection timing is exact. When the tile's
/// inject queue is full at the scheduled cycle the send waits at the head
/// of its tile's schedule and retries — source queueing delay that the
/// latency statistics deliberately include (the packet's `born` stamp is
/// the *scheduled* cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledSend {
    /// NoC cycle at which to inject (absolute, from the start of the run).
    pub cycle: u64,
    /// Destination tile.
    pub dst: u32,
    /// Destination task type (also selects the NoC plane).
    pub task: u8,
    /// Payload words.
    pub payload: Payload,
    /// Optional in-network reduction.
    pub reduce: Option<ReduceOp>,
}

/// An outgoing message recorded by a task.
#[derive(Debug, Clone, PartialEq)]
pub struct OutMsg {
    /// Destination tile.
    pub dst: u32,
    /// Destination task type.
    pub task: u8,
    /// Payload words.
    pub payload: Payload,
    /// PU cycle (within the sending tile's clock) at which the message
    /// was pushed.
    pub at_pu_cycle: u64,
    /// Optional in-network reduction.
    pub reduce: Option<ReduceOp>,
}

/// Execution context handed to task handlers: latency instrumentation,
/// memory access, and message sending.
///
/// The handler runs *functionally* on the host; every instrumentation call
/// advances the simulated PU clock for this task.
#[derive(Debug)]
pub struct TaskCtx<'a> {
    /// The executing tile.
    pub tile: u32,
    /// The kernel index (paper: `kernel_count`).
    pub kernel: u32,
    grid: GridInfo,
    /// PU cycle at which the task started.
    start_cycle: u64,
    /// Cycles accrued so far.
    cycles: u64,
    mem: &'a mut TileMemory,
    channel: Option<&'a mut ChannelState>,
    counters: &'a mut PuCounters,
    sends: &'a mut Vec<OutMsg>,
}

impl<'a> TaskCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        tile: u32,
        kernel: u32,
        grid: GridInfo,
        start_cycle: u64,
        mem: &'a mut TileMemory,
        channel: Option<&'a mut ChannelState>,
        counters: &'a mut PuCounters,
        sends: &'a mut Vec<OutMsg>,
    ) -> Self {
        TaskCtx {
            tile,
            kernel,
            grid,
            start_cycle,
            cycles: 0,
            mem,
            channel,
            counters,
            sends,
        }
    }

    /// Grid geometry.
    pub fn grid(&self) -> GridInfo {
        self.grid
    }

    /// PU cycles accrued by this task so far.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycles
    }

    /// Adds raw cycles from a user-provided performance model.
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Counts `n` integer ALU ops (1 cycle each on the in-order PU model).
    pub fn int_ops(&mut self, n: u64) {
        self.counters.int_ops += n;
        self.cycles += n;
    }

    /// Counts `n` floating-point ops (1 cycle each, pipelined FPU).
    pub fn fp_ops(&mut self, n: u64) {
        self.counters.fp_ops += n;
        self.cycles += n;
    }

    /// Counts `n` control-flow instructions.
    pub fn ctrl_ops(&mut self, n: u64) {
        self.counters.ctrl_ops += n;
        self.cycles += n;
    }

    /// Counts `n` application-level work units (edges traversed, non-zeros
    /// multiplied, elements processed) for TEPS-style throughput.
    pub fn app_ops(&mut self, n: u64) {
        self.counters.app_ops += n;
    }

    /// Performs a load at `addr`; the latency (hit/miss/contention
    /// dependent) is added to the task's cycles.
    pub fn load(&mut self, addr: u64) {
        let now = self.start_cycle + self.cycles;
        let lat = self
            .mem
            .access(addr, AccessKind::Read, now, self.channel.as_deref_mut());
        self.counters.loads += 1;
        self.cycles += lat;
    }

    /// Performs a store at `addr`.
    pub fn store(&mut self, addr: u64) {
        let now = self.start_cycle + self.cycles;
        let lat = self
            .mem
            .access(addr, AccessKind::Write, now, self.channel.as_deref_mut());
        self.counters.stores += 1;
        self.cycles += lat;
    }

    /// Virtual address of `local_index` in this tile's logical array
    /// `array_id` (convenience over [`GridInfo::array_addr`]).
    pub fn local_addr(&self, array_id: u32, local_index: u64, elem_bytes: u64) -> u64 {
        self.grid
            .array_addr(self.tile, array_id, local_index, elem_bytes)
    }

    /// Sends a message invoking `task` on tile `dst`.
    ///
    /// Local sends (dst == this tile) bypass the network; remote sends
    /// drain through the per-task channel queue into the NoC.
    pub fn send(&mut self, task: u8, dst: u32, payload: &[u32]) {
        self.send_inner(task, dst, payload, None);
    }

    /// Sends a reducible message: en route, it may combine with another
    /// message for the same task, tile and key (payload word 0), with
    /// `op` merging the value (payload word 1).
    pub fn send_reduce(&mut self, task: u8, dst: u32, payload: &[u32], op: ReduceOp) {
        self.send_inner(task, dst, payload, Some(op));
    }

    fn send_inner(&mut self, task: u8, dst: u32, payload: &[u32], reduce: Option<ReduceOp>) {
        // pushing into a queue costs a store-like queue write
        let lat = self.mem.queue_write(payload.len().max(1) as u64);
        self.counters.msgs_sent += 1;
        self.cycles += lat;
        self.sends.push(OutMsg {
            dst,
            task,
            payload: Payload::from_slice(payload),
            at_pu_cycle: self.start_cycle + self.cycles,
            reduce,
        });
    }
}

/// A MuchiSim application: a set of message-triggered task handlers plus
/// an init task, operating on per-tile state (paper §III-B).
///
/// The application object itself is shared immutably across host threads
/// (read-only dataset, parameters); all mutable state lives in
/// [`Application::Tile`] values, one per tile, which the engine owns and
/// hands back to handlers. This makes column-parallel simulation safe by
/// construction.
pub trait Application: Sync + Send {
    /// Mutable per-tile state (the tile's partition of the dataset
    /// outputs, frontiers, accumulators, ...).
    type Tile: Send;

    /// Application name (for logs and reports).
    fn name(&self) -> &'static str;

    /// Number of message-triggered task types (ids `0..task_types`).
    fn task_types(&self) -> u8;

    /// Number of kernels executed in sequence with global barriers
    /// between them (paper §III-B "Init task").
    fn kernels(&self) -> u32 {
        1
    }

    /// Task-invocation edges `(from, to)` used to verify the dependency
    /// chain is acyclic (paper §III-B: loops between MTTs are not allowed).
    fn task_graph(&self) -> Vec<(u8, u8)> {
        Vec::new()
    }

    /// Software-parameter overrides (queue sizes, priorities).
    fn configure(&self, _sw: &mut SoftwareConfig) {}

    /// Builds the initial per-tile state.
    fn make_tile(&self, tile: u32, grid: &GridInfo) -> Self::Tile;

    /// Pre-scheduled NoC injections for `tile`, in non-decreasing cycle
    /// order (consumed front to back during kernel 0).
    ///
    /// The default — no scheduled sends — costs ordinary applications
    /// nothing. Implementations drive the network directly on a fixed
    /// timetable: synthetic traffic patterns and recorded-trace replay.
    /// Scheduled packets still occupy inject queues, arbitrate, back-
    /// pressure, and eject into input queues that dispatch
    /// [`Application::handle`] like any other message.
    fn scheduled_sends(&self, _tile: u32, _grid: &GridInfo) -> Vec<ScheduledSend> {
        Vec::new()
    }

    /// The init task, run once per tile at the start of each kernel.
    fn init(&self, state: &mut Self::Tile, ctx: &mut TaskCtx<'_>);

    /// Handles one message-triggered task.
    fn handle(&self, state: &mut Self::Tile, task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>);

    /// The first memory address a queued `task` message will touch, used
    /// by the TSU to prefetch across one pointer indirection while the
    /// message waits in the input queue (paper §III-A "Prefetching").
    ///
    /// Only consulted when the DRAM configuration enables
    /// pointer-indirection prefetching; `None` disables it for this task.
    fn prefetch_addr(&self, _task: u8, _msg: &[u32], _tile: u32, _grid: &GridInfo) -> Option<u64> {
        None
    }

    /// Verifies the final result against a reference (paper §III-B
    /// "Result-check function").
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the mismatch.
    fn check(&self, _tiles: &[Self::Tile]) -> Result<(), String> {
        Ok(())
    }

    /// Host heap bytes owned by one tile state *beyond* its inline size
    /// (the engine accounts `size_of::<Self::Tile>()` itself), feeding
    /// the simulator's bytes-per-tile telemetry. Override when `Tile`
    /// owns heap allocations (per-vertex arrays, buffers, ...).
    fn tile_state_bytes(&self, _state: &Self::Tile) -> u64 {
        0
    }

    /// Serializes one tile's state into `out` for a checkpoint snapshot
    /// (see `muchisim_core::snapshot` for the little-endian helpers;
    /// encode floats via their bit patterns so the round trip is exact).
    ///
    /// The default refuses, so applications without the hook fail
    /// checkpointing with a clean error instead of silently dropping
    /// state.
    ///
    /// # Errors
    ///
    /// Returns a description of why the state cannot be serialized.
    fn snapshot_tile(&self, _state: &Self::Tile, _out: &mut Vec<u8>) -> Result<(), String> {
        Err(format!(
            "application '{}' does not support checkpointing (no snapshot_tile hook)",
            self.name()
        ))
    }

    /// Restores one tile's state from a [`Application::snapshot_tile`]
    /// blob, overwriting `state` (which was freshly built by
    /// [`Application::make_tile`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the decode failure.
    fn restore_tile(&self, _state: &mut Self::Tile, _bytes: &[u8]) -> Result<(), String> {
        Err(format!(
            "application '{}' does not support checkpointing (no restore_tile hook)",
            self.name()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::SystemConfig;

    fn grid() -> GridInfo {
        GridInfo {
            width: 4,
            height: 4,
            total_tiles: 16,
            pus_per_tile: 1,
        }
    }

    #[test]
    fn tile_addresses_never_alias() {
        let g = grid();
        let a = g.array_addr(0, 7, (2 << 20) / 4 - 1, 4);
        let b = g.array_addr(1, 0, 0, 4);
        assert!(a < b);
        assert!(g.tile_base(1) - g.tile_base(0) == TILE_SPAN_BYTES);
    }

    #[test]
    fn ctx_instrumentation_accrues_cycles() {
        let cfg = SystemConfig::default();
        let mut mem = TileMemory::from_system(&cfg);
        let mut counters = PuCounters::default();
        let mut sends = Vec::new();
        let mut ctx = TaskCtx::new(0, 0, grid(), 100, &mut mem, None, &mut counters, &mut sends);
        ctx.int_ops(3);
        ctx.fp_ops(2);
        ctx.ctrl_ops(1);
        ctx.add_cycles(4);
        assert_eq!(ctx.elapsed_cycles(), 10);
        ctx.load(0x100);
        assert!(ctx.elapsed_cycles() > 10);
        assert_eq!(counters.int_ops, 3);
        assert_eq!(counters.fp_ops, 2);
        assert_eq!(counters.loads, 1);
    }

    #[test]
    fn ctx_send_records_timestamped_message() {
        let cfg = SystemConfig::default();
        let mut mem = TileMemory::from_system(&cfg);
        let mut counters = PuCounters::default();
        let mut sends = Vec::new();
        let mut ctx = TaskCtx::new(0, 0, grid(), 50, &mut mem, None, &mut counters, &mut sends);
        ctx.int_ops(5);
        ctx.send(1, 9, &[1, 2]);
        assert_eq!(sends.len(), 1);
        let m = &sends[0];
        assert_eq!(m.dst, 9);
        assert_eq!(m.task, 1);
        assert_eq!(m.payload.as_slice(), &[1, 2]);
        // sent after the 5 compute cycles plus the queue write
        assert!(m.at_pu_cycle > 55);
        assert_eq!(counters.msgs_sent, 1);
    }

    #[test]
    fn send_reduce_tags_operator() {
        let cfg = SystemConfig::default();
        let mut mem = TileMemory::from_system(&cfg);
        let mut counters = PuCounters::default();
        let mut sends = Vec::new();
        let mut ctx = TaskCtx::new(0, 0, grid(), 0, &mut mem, None, &mut counters, &mut sends);
        ctx.send_reduce(0, 3, &[9, 5], ReduceOp::MinU32);
        assert_eq!(sends[0].reduce, Some(ReduceOp::MinU32));
    }
}
