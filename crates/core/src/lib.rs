//! # muchisim-core
//!
//! The MuchiSim simulation engine (paper §III-B / §III-C).
//!
//! Applications are described as a set of *message-triggered tasks*
//! (MTTs): each task type has an input queue (IQ) per tile, and tasks
//! invoke each other by sending small messages, either locally (straight
//! into the destination IQ) or through the cycle-level NoC via per-task
//! channel queues (CQs). An *init task* runs once per tile at the start of
//! each kernel; kernels compose into an application with global barriers
//! between them. Both parallelization extremes are supported: pure do-all
//! kernels (everything in the init task) and pure MTT cascades seeded by a
//! single message.
//!
//! Compute is executed *functionally on the host*: task handlers run real
//! Rust code against their tile's partition of the dataset, and report
//! their DUT latency through the instrumentation methods of [`TaskCtx`]
//! ([`TaskCtx::int_ops`], [`TaskCtx::load`], ...), exactly the
//! user-instrumented PU model of the paper. Memory operations go through
//! [`muchisim_mem::TileMemory`], so their latency is hit/miss- and
//! contention-dependent.
//!
//! The engine advances the NoC every cycle; PUs run ahead of the network,
//! with message timestamps keeping the two consistent (paper §III-C). The
//! [`Simulation::run`] driver is single-threaded; [`Simulation::run_parallel`]
//! slices the tile grid by columns across host threads (one shard per
//! thread) and produces **bit-identical** results. By default the driver
//! is *time-leaping*: every layer holding latent work exposes an
//! [`EventHorizon`] and the driver jumps over provably event-free cycle
//! ranges, which is again bit-identical to stepping them (disable via
//! `SystemConfig::time_leap` or the `MUCHISIM_NO_LEAP` environment
//! variable to measure the lockstep driver).
//!
//! # Example: ping-pong across the grid
//!
//! ```
//! use muchisim_config::SystemConfig;
//! use muchisim_core::{Application, GridInfo, Simulation, SoftwareConfig, TaskCtx};
//!
//! struct Ping;
//! impl Application for Ping {
//!     type Tile = u32; // messages seen per tile
//!     fn name(&self) -> &'static str { "ping" }
//!     fn task_types(&self) -> u8 { 1 }
//!     fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u32 { 0 }
//!     fn init(&self, _state: &mut u32, ctx: &mut TaskCtx<'_>) {
//!         if ctx.tile == 0 {
//!             ctx.int_ops(1);
//!             let last = ctx.grid().total_tiles - 1;
//!             ctx.send(0, last, &[7]);
//!         }
//!     }
//!     fn handle(&self, state: &mut u32, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
//!         *state += msg[0];
//!         ctx.int_ops(1);
//!     }
//!     fn check(&self, tiles: &[u32]) -> Result<(), String> {
//!         (tiles.iter().sum::<u32>() == 7).then_some(()).ok_or("lost message".into())
//!     }
//! }
//!
//! let cfg = SystemConfig::builder().chiplet_tiles(4, 4).build().unwrap();
//! let result = Simulation::new(cfg, Ping).unwrap().run().unwrap();
//! assert!(result.runtime_cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod counters;
pub mod digest;
mod engine;
mod error;
mod frames;
mod horizon;
mod parallel;
mod queues;
mod sched;
mod slice;
pub mod snapshot;
mod tile;
mod ward;

pub use app::{Application, GridInfo, OutMsg, ScheduledSend, SoftwareConfig, TaskCtx};
pub use counters::{PuCounters, SimCounters};
pub use engine::Simulation;
pub use error::SimError;
pub use frames::{read_spill_jsonl, Frame, FrameLog, FrameSink, FrameSpill};
pub use horizon::EventHorizon;
pub use muchisim_noc::{LatencyStats, Payload, ReduceOp};
pub use muchisim_telemetry::{MemorySubscriber, MetricsSample, Subscriber, WardTrip};
pub use tile::{HostPhaseNs, SimResult};
pub use ward::{TileDiag, WardReport};
