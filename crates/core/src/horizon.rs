//! Next-event horizons for the time-leaping cycle driver.
//!
//! Every layer that can hold latent work — tile engines (queued tasks
//! waiting for a PU clock), channel queues, DRAM channel backlogs, NoC
//! shards and cross-shard mailboxes — answers one question: *given the
//! current cycle, what is the earliest future cycle at which you can do
//! anything?* The driver min-reduces those horizons across workers and,
//! when the answer is further than one cycle away, jumps the clock
//! straight there instead of stepping barrier-pair by barrier-pair
//! through cycles where provably nothing happens.
//!
//! A horizon is *exact*, never a heuristic: leaping to it must leave
//! every counter, queue, and statistics frame bit-identical to the
//! lockstep driver. Anything a component cannot bound precisely it must
//! clamp to `now + 1` (no leap).

use muchisim_config::SystemConfig;
use muchisim_mem::ChannelState;
use muchisim_noc::{Shard, SharedNet};

/// A component that can report when it next has work to do.
///
/// `now` and the returned cycle are in the component's own clock domain
/// (NoC cycles for network components, PU cycles for tiles and DRAM
/// channels — the driver converts through its internal `ClockConv`).
pub trait EventHorizon {
    /// The earliest cycle at or after `now` at which this component can
    /// produce an event, or `None` if it is completely idle (it will not
    /// act again until external input arrives).
    fn next_event_cycle(&self, now: u64) -> Option<u64>;
}

impl EventHorizon for ChannelState {
    /// PU-clock domain: when the transaction backlog drains.
    fn next_event_cycle(&self, now: u64) -> Option<u64> {
        ChannelState::next_event_cycle(self, now)
    }
}

impl EventHorizon for Shard {
    /// NoC-clock domain: the earliest head `ready_at` among this shard's
    /// router queues and deferred same-shard pushes.
    fn next_event_cycle(&self, now: u64) -> Option<u64> {
        Shard::next_event_cycle(self, now)
    }
}

impl EventHorizon for SharedNet {
    /// NoC-clock domain: the earliest `ready_at` among packets parked in
    /// cross-shard mailboxes. Only sound after the step-phase barrier —
    /// the driver's leader action is the one place that calls it.
    fn next_event_cycle(&self, now: u64) -> Option<u64> {
        self.mailbox_next_event_cycle(now)
    }
}

/// Integer-femtosecond conversions between the PU and NoC clock domains.
///
/// The lockstep driver compared clock instants with `f64` picosecond
/// products, which made dispatch eligibility and leap targets vulnerable
/// to disagreeing by a rounding ulp at non-integer periods. All hot-loop
/// comparisons now go through this one struct so the two can never
/// diverge.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClockConv {
    /// PU clock period in femtoseconds.
    pub pu_period_fs: u64,
    /// NoC clock period in femtoseconds.
    pub noc_period_fs: u64,
    /// Whether the two domains tick in lockstep (the common 1:1
    /// configuration). The conversions below are on the per-tile
    /// per-cycle hot path, and the general case pays a 128-bit division
    /// per call; equal periods make every conversion the identity.
    same_period: bool,
}

impl ClockConv {
    pub fn from_system(cfg: &SystemConfig) -> Self {
        let pu_period_fs = cfg.pu_clock.operating.period_fs();
        let noc_period_fs = cfg.noc_clock.operating.period_fs();
        ClockConv {
            pu_period_fs,
            noc_period_fs,
            same_period: pu_period_fs == noc_period_fs,
        }
    }

    /// Whether a PU whose clock stands at `pu_cycle` has been caught up
    /// by NoC time `noc_cycle` (the §III-C dispatch-eligibility rule).
    pub fn pu_ready(&self, pu_cycle: u64, noc_cycle: u64) -> bool {
        if self.same_period {
            return pu_cycle <= noc_cycle;
        }
        pu_cycle as u128 * self.pu_period_fs as u128
            <= noc_cycle as u128 * self.noc_period_fs as u128
    }

    /// The first NoC cycle at or after the PU-clock instant `pu_cycle`
    /// (the cycle at which [`ClockConv::pu_ready`] turns true).
    pub fn noc_cycle_for_pu(&self, pu_cycle: u64) -> u64 {
        if self.same_period {
            return pu_cycle;
        }
        let fs = pu_cycle as u128 * self.pu_period_fs as u128;
        u64::try_from(fs.div_ceil(self.noc_period_fs as u128)).unwrap_or(u64::MAX)
    }

    /// PU cycles fully elapsed at NoC cycle `noc_cycle` (floor).
    pub fn pu_cycle_floor(&self, noc_cycle: u64) -> u64 {
        if self.same_period {
            return noc_cycle;
        }
        let fs = noc_cycle as u128 * self.noc_period_fs as u128;
        u64::try_from(fs / self.pu_period_fs as u128).unwrap_or(u64::MAX)
    }

    /// The femtosecond instant of PU cycle `pu_cycle`.
    pub fn pu_cycle_fs(&self, pu_cycle: u64) -> u64 {
        u64::try_from(pu_cycle as u128 * self.pu_period_fs as u128).unwrap_or(u64::MAX)
    }

    /// The first NoC cycle at or after the absolute instant `fs`.
    pub fn noc_cycle_for_fs(&self, fs: u64) -> u64 {
        (fs as u128).div_ceil(self.noc_period_fs as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::Frequency;

    fn conv(pu_ghz: f64, noc_ghz: f64) -> ClockConv {
        let mut b = SystemConfig::builder();
        b.pu_frequency(Frequency::ghz(pu_ghz))
            .noc_frequency(Frequency::ghz(noc_ghz));
        ClockConv::from_system(&b.build().unwrap())
    }

    #[test]
    fn equal_clocks_are_one_to_one() {
        let c = conv(1.0, 1.0);
        assert!(c.pu_ready(5, 5));
        assert!(!c.pu_ready(6, 5));
        assert_eq!(c.noc_cycle_for_pu(7), 7);
        assert_eq!(c.pu_cycle_floor(7), 7);
    }

    #[test]
    fn faster_pu_clock_ratio() {
        // 2 GHz PU over 1 GHz NoC: 2 PU cycles per NoC cycle
        let c = conv(2.0, 1.0);
        assert!(c.pu_ready(10, 5));
        assert!(!c.pu_ready(11, 5));
        assert_eq!(c.noc_cycle_for_pu(11), 6);
        assert_eq!(c.pu_cycle_floor(5), 10);
    }

    #[test]
    fn dispatch_and_horizon_agree_at_awkward_ratios() {
        // the satellite bug: 1.5 GHz PU vs 1 GHz NoC used to be decided
        // in f64 ps; now the leap target is *defined* as the first cycle
        // where pu_ready flips, so the two cannot disagree
        let c = conv(1.5, 1.0);
        for pu_cycle in 0..1000u64 {
            let target = c.noc_cycle_for_pu(pu_cycle);
            assert!(c.pu_ready(pu_cycle, target), "ready at its own horizon");
            if target > 0 {
                assert!(
                    !c.pu_ready(pu_cycle, target - 1),
                    "pu {pu_cycle} ready before horizon {target}"
                );
            }
        }
    }

    #[test]
    fn equal_period_fast_path_matches_general_formula() {
        let fast = conv(1.0, 1.0);
        assert!(fast.same_period);
        let slow = ClockConv {
            same_period: false,
            ..fast
        };
        for x in [0u64, 1, 7, 1000, 123_456_789] {
            assert_eq!(fast.noc_cycle_for_pu(x), slow.noc_cycle_for_pu(x));
            assert_eq!(fast.pu_cycle_floor(x), slow.pu_cycle_floor(x));
            for y in [0u64, 1, 7, 999, 123_456_789] {
                assert_eq!(fast.pu_ready(x, y), slow.pu_ready(x, y));
            }
        }
    }

    #[test]
    fn fs_round_trip() {
        let c = conv(1.0, 1.0);
        assert_eq!(c.pu_cycle_fs(3), 3_000_000);
        assert_eq!(c.noc_cycle_for_fs(3_000_000), 3);
        assert_eq!(c.noc_cycle_for_fs(3_000_001), 4);
    }

    #[test]
    fn channel_state_horizon_via_trait() {
        let mut ch = ChannelState::default();
        assert_eq!(EventHorizon::next_event_cycle(&ch, 0), None);
        ch.request(0, 50);
        ch.request(0, 50);
        assert_eq!(EventHorizon::next_event_cycle(&ch, 0), Some(2));
        assert_eq!(EventHorizon::next_event_cycle(&ch, 5), None);
    }
}
