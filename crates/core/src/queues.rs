//! Lazily-allocated per-task-type queue banks.
//!
//! Every tile owns one input queue (IQ) and one channel queue (CQ) per
//! task type, but at million-tile scale the overwhelming majority of
//! tiles are idle at any instant and many never receive a message at
//! all. [`LazyQueues`] defers the queue-bank allocation until the first
//! push, so an untouched tile pays one null pointer instead of
//! `task_types` `VecDeque` headers — with *identical* observable
//! behavior: an unallocated bank is indistinguishable from a bank of
//! empty queues.

use std::collections::VecDeque;

/// A fixed-arity bank of FIFOs, allocated on first use.
#[derive(Debug)]
pub(crate) struct LazyQueues<T> {
    qs: Option<Box<[VecDeque<T>]>>,
    n: u8,
}

impl<T> LazyQueues<T> {
    /// A bank of `n` queues, none of them materialized yet.
    pub fn new(n: u8) -> Self {
        LazyQueues { qs: None, n }
    }

    /// Number of queues in the bank (fixed at construction).
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// The queues as a slice: empty until the first push, `len()` queues
    /// afterwards. Callers treating "no queues" and "all queues empty"
    /// identically (schedulers, horizon scans) can use this directly.
    pub fn as_slice(&self) -> &[VecDeque<T>] {
        self.qs.as_deref().unwrap_or(&[])
    }

    /// Mutable access to queue `i`, materializing the bank.
    pub fn q_mut(&mut self, i: usize) -> &mut VecDeque<T> {
        let n = self.n as usize;
        debug_assert!(i < n, "queue index {i} out of {n}");
        &mut self
            .qs
            .get_or_insert_with(|| (0..n).map(|_| VecDeque::new()).collect())[i]
    }

    /// The head of queue `i` without materializing anything.
    pub fn front(&self, i: usize) -> Option<&T> {
        self.qs.as_deref().and_then(|qs| qs[i].front())
    }

    /// Pops the head of queue `i` without materializing anything.
    pub fn pop_front(&mut self, i: usize) -> Option<T> {
        self.qs.as_deref_mut().and_then(|qs| qs[i].pop_front())
    }

    /// Messages queued in queue `i` (0 when unmaterialized).
    pub fn q_len(&self, i: usize) -> usize {
        self.qs.as_deref().map_or(0, |qs| qs[i].len())
    }

    /// Whether the bank has been materialized.
    #[cfg(test)]
    pub fn is_allocated(&self) -> bool {
        self.qs.is_some()
    }

    /// Host heap bytes owned by the bank: queue headers, ring-buffer
    /// capacity, plus `elem_heap` for each queued element's own heap.
    pub fn heap_bytes(&self, elem_heap: impl Fn(&T) -> u64) -> u64 {
        let Some(qs) = self.qs.as_deref() else {
            return 0;
        };
        qs.len() as u64 * std::mem::size_of::<VecDeque<T>>() as u64
            + qs.iter()
                .map(|q| {
                    q.capacity() as u64 * std::mem::size_of::<T>() as u64
                        + q.iter().map(&elem_heap).sum::<u64>()
                })
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unallocated_bank_reads_as_empty() {
        let q: LazyQueues<u32> = LazyQueues::new(3);
        assert_eq!(q.len(), 3);
        assert!(q.as_slice().is_empty());
        assert_eq!(q.front(2), None);
        assert_eq!(q.q_len(0), 0);
        assert!(!q.is_allocated());
    }

    #[test]
    fn pop_on_unallocated_bank_is_none_and_does_not_allocate() {
        let mut q: LazyQueues<u32> = LazyQueues::new(2);
        assert_eq!(q.pop_front(1), None);
        assert!(!q.is_allocated());
    }

    #[test]
    fn first_push_materializes_the_whole_bank() {
        let mut q: LazyQueues<u32> = LazyQueues::new(3);
        q.q_mut(1).push_back(7);
        assert!(q.is_allocated());
        assert_eq!(q.as_slice().len(), 3);
        assert_eq!(q.front(1), Some(&7));
        assert_eq!(q.q_len(1), 1);
        assert_eq!(q.pop_front(1), Some(7));
        assert_eq!(q.pop_front(1), None);
    }

    #[test]
    fn fifo_order_per_queue() {
        let mut q: LazyQueues<u32> = LazyQueues::new(2);
        q.q_mut(0).push_back(1);
        q.q_mut(0).push_back(2);
        q.q_mut(1).push_back(9);
        assert_eq!(q.pop_front(0), Some(1));
        assert_eq!(q.pop_front(0), Some(2));
        assert_eq!(q.pop_front(1), Some(9));
    }
}
