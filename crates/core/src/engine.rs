//! Simulation setup and the sequential driver.

use crate::app::{Application, GridInfo, OutMsg, ScheduledSend, SoftwareConfig, TaskCtx};
use crate::counters::SimCounters;
use crate::error::SimError;
use crate::frames::{Frame, FrameLog, FrameSink, FrameSpill};
use crate::horizon::ClockConv;
use crate::sched::Scheduler;
use crate::slice::ColSlice;
use crate::tile::{HostPhaseNs, SimResult, TileEngine};
use muchisim_config::{MemoryConfig, SchedulingPolicy, SystemConfig, TimePs, Verbosity};
use muchisim_mem::{ChannelMap, ChannelState};
use muchisim_noc::{
    split_by_activity, split_columns, ActiveSet, EjectSink, InPort, Network, NetworkParams, OutDir,
    Packet, Payload, Shard, SharedNet,
};
use std::sync::Arc;
use std::time::Instant;

/// Maximum task types supported by the engine.
const MAX_TASK_TYPES: u8 = 32;

/// A configured simulation, ready to run.
///
/// Build with [`Simulation::new`], then call [`Simulation::run`]
/// (sequential) or [`Simulation::run_parallel`].
#[derive(Debug)]
pub struct Simulation<A: Application> {
    cfg: SystemConfig,
    app: A,
    cycle_limit: u64,
    /// Treat hitting the cycle limit as a normal stop instead of an
    /// error (calibration windows).
    stop_at_limit: bool,
    /// Explicit shard column boundaries (activity-balanced runs);
    /// `None` splits evenly by [`split_columns`].
    boundaries: Option<Vec<u32>>,
    /// Extra telemetry subscribers attached via
    /// [`Simulation::with_subscriber`] (tests, embedding hosts), fed by
    /// the same sample stream as the configured file subscribers.
    subscribers: Vec<Box<dyn muchisim_telemetry::Subscriber>>,
}

impl<A: Application> Simulation<A> {
    /// Validates the configuration and application and builds a simulation.
    ///
    /// If the `MUCHISIM_NO_LEAP` environment variable is set, the
    /// time-leaping driver is disabled regardless of
    /// `SystemConfig::time_leap`; if `MUCHISIM_NO_ACTIVE_LIST` is set,
    /// the active-tile/router worklists are disabled regardless of
    /// `SystemConfig::active_list` (results are bit-identical either
    /// way; only host time changes).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for invalid configurations,
    /// [`SimError::TooManyTaskTypes`], or [`SimError::CyclicTaskGraph`] if
    /// the application's task-invocation graph has a loop (forbidden by
    /// the paper's deadlock-avoidance rule, §III-B).
    pub fn new(mut cfg: SystemConfig, app: A) -> Result<Self, SimError> {
        cfg.validate()?;
        // kill switch for the time-leaping driver: lets CI (and bug
        // bisection) run the whole suite through the lockstep path
        // without touching every call site
        if std::env::var_os("MUCHISIM_NO_LEAP").is_some() {
            cfg.time_leap = false;
        }
        // same kill-switch pattern for the active-element worklists
        if std::env::var_os("MUCHISIM_NO_ACTIVE_LIST").is_some() {
            cfg.active_list = false;
        }
        let n = app.task_types();
        if n > MAX_TASK_TYPES {
            return Err(SimError::TooManyTaskTypes { declared: n });
        }
        if has_cycle(n, &app.task_graph()) {
            return Err(SimError::CyclicTaskGraph);
        }
        Ok(Simulation {
            cfg,
            app,
            cycle_limit: u64::MAX / 4,
            stop_at_limit: false,
            boundaries: None,
            subscribers: Vec::new(),
        })
    }

    /// Sets an upper bound on simulated NoC cycles per kernel.
    pub fn with_cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Attaches an extra telemetry subscriber (e.g. a
    /// [`MemorySubscriber`](muchisim_telemetry::MemorySubscriber) in
    /// tests). Samples flow only when `SystemConfig::telemetry` sets a
    /// `sample_every` cadence.
    pub fn with_subscriber(mut self, subscriber: Box<dyn muchisim_telemetry::Subscriber>) -> Self {
        self.subscribers.push(subscriber);
        self
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs single-threaded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimitExceeded`] if a kernel fails to
    /// drain within the cycle limit.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.run_parallel(1)
    }

    /// Runs with up to `threads` host threads, one column slice each
    /// (paper §III-C). Results are bit-identical to [`Simulation::run`].
    ///
    /// When `SystemConfig::checkpoint_resume` is set and the checkpoint
    /// file exists, the run restores the snapshot and continues from its
    /// cycle (bit-identically to the uninterrupted run, under *any*
    /// thread count); a missing file starts from scratch. When
    /// `SystemConfig::checkpoint_every` is set, snapshots are written
    /// periodically during the run.
    ///
    /// # Errors
    ///
    /// See [`Simulation::run`]; additionally returns
    /// [`SimError::FrameSpill`] when `SystemConfig::frame_spill` names a
    /// path that cannot be created, and [`SimError::Snapshot`] when a
    /// checkpoint file is corrupt, incompatible with this configuration,
    /// or cannot be written.
    pub fn run_parallel(mut self, threads: usize) -> Result<SimResult, SimError> {
        let subscribers = std::mem::take(&mut self.subscribers);
        let spill = match &self.cfg.frame_spill {
            Some(path) => Some(
                FrameSpill::create(path, self.cfg.frame_interval_cycles.max(1))
                    .map_err(SimError::FrameSpill)?,
            ),
            None => None,
        };
        // a resume with no file yet is a fresh start (first run of a
        // restartable job); an existing-but-unreadable file is an error
        let snap = match (&self.cfg.checkpoint_path, self.cfg.checkpoint_resume) {
            (Some(path), true) if std::path::Path::new(path).exists() => {
                Some(crate::snapshot::read_snapshot(path)?)
            }
            _ => None,
        };
        let mut setup = SimSetup::build(
            &self.cfg,
            &self.app,
            threads,
            self.boundaries.as_deref(),
            spill,
        );
        let resume = match &snap {
            Some(data) => {
                validate_snapshot(&self.cfg, &self.app, data)?;
                for (widx, w) in setup.workers.iter_mut().enumerate() {
                    w.restore_from_snapshot(&self.app, data, widx)?;
                }
                restore_networks(&mut setup.networks, data)?;
                Some(crate::parallel::ResumeState {
                    kernel: data.kernel,
                    cycle: data.cycle,
                    base: data.base,
                })
            }
            None => None,
        };
        crate::parallel::drive(
            &self.cfg,
            &self.app,
            setup,
            self.cycle_limit,
            self.stop_at_limit,
            resume,
            subscribers,
        )
    }

    /// Runs a *calibration window*: at most `window_cycles` NoC cycles
    /// per kernel, stopping normally (instead of erroring) if the limit
    /// is hit.
    ///
    /// The partial result's [`SimResult::column_activity`] feeds
    /// [`Simulation::run_balanced`]; its `check_error` is meaningless for
    /// an interrupted application and should be ignored.
    ///
    /// # Errors
    ///
    /// See [`Simulation::run_parallel`] (everything except the cycle
    /// limit).
    pub fn run_window(mut self, threads: usize, window_cycles: u64) -> Result<SimResult, SimError> {
        self.cycle_limit = window_cycles;
        self.stop_at_limit = true;
        self.run_parallel(threads)
    }

    /// Runs with up to `threads` host threads whose shard boundaries are
    /// balanced by `column_weights` (one measured event count per grid
    /// column, e.g. [`SimResult::column_activity`] from a
    /// [`Simulation::run_window`] calibration) instead of split evenly.
    ///
    /// Boundaries still respect DRAM channel-band alignment, and results
    /// are bit-identical to [`Simulation::run`] for *any* boundary
    /// placement — balancing only changes how evenly host work spreads
    /// across threads.
    ///
    /// # Errors
    ///
    /// See [`Simulation::run_parallel`].
    pub fn run_balanced(
        mut self,
        threads: usize,
        column_weights: &[u64],
    ) -> Result<SimResult, SimError> {
        debug_assert_eq!(column_weights.len(), self.cfg.width() as usize);
        let align = ChannelMap::from_system(&self.cfg).map_or(1, |m| m.band_cols());
        self.boundaries = Some(split_by_activity(column_weights, threads, align));
        self.run_parallel(threads)
    }
}

/// Everything constructed before the cycle loop starts.
pub(crate) struct SimSetup<A: Application> {
    pub workers: Vec<Worker<A>>,
    pub networks: Vec<Network>,
}

impl<A: Application> SimSetup<A> {
    pub(crate) fn build(
        cfg: &SystemConfig,
        app: &A,
        threads: usize,
        boundaries: Option<&[u32]>,
        spill: Option<FrameSpill>,
    ) -> Self {
        let channel_map = ChannelMap::from_system(cfg);
        let align = channel_map.map_or(1, |m| m.band_cols());
        let boundaries = match boundaries {
            Some(b) => b.to_vec(),
            None => split_columns(cfg.width(), threads, align),
        };
        let planes = cfg.noc.num_physical.max(1);
        let networks: Vec<Network> = (0..planes)
            .map(|_| Network::with_boundaries(NetworkParams::from_system(cfg), &boundaries))
            .collect();
        let mut sw = SoftwareConfig::default();
        app.configure(&mut sw);
        let grid = GridInfo {
            width: cfg.width(),
            height: cfg.height(),
            total_tiles: cfg.width() * cfg.height(),
            pus_per_tile: cfg.pus_per_tile,
        };
        let mut workers = Vec::with_capacity(boundaries.len());
        let mut start = 0;
        for (widx, &end) in boundaries.iter().enumerate() {
            let slice = ColSlice::new(start..end, cfg.width(), cfg.height());
            workers.push(Worker::new(
                cfg,
                app,
                &sw,
                slice,
                grid,
                channel_map,
                widx,
                spill.clone(),
            ));
            start = end;
        }
        SimSetup { workers, networks }
    }
}

/// One host worker: a column slice of tiles plus its DRAM channels.
///
/// The scalars the per-cycle sweeps read live here as dense arrays
/// indexed by local tile id (`pu_clock`, `iq_msgs`, `cq_msgs`,
/// `init_pending`, `pu_busy_frame`), not in [`TileEngine`]: the active
/// worklist drain walks contiguous memory and only dereferences a tile's
/// cold struct when a task actually dispatches or a message moves.
pub(crate) struct Worker<A: Application> {
    pub slice: ColSlice,
    pub tiles: Vec<TileEngine>,
    pub states: Vec<A::Tile>,
    channels: Vec<ChannelState>,
    channel_map: Option<ChannelMap>,
    grid: GridInfo,
    kernel: u32,
    cq_capacity: u32,
    /// Integer-femtosecond PU/NoC clock conversions (shared by dispatch
    /// eligibility, CQ readiness, and time-leap horizons).
    pub clock: ClockConv,
    flit_bytes: u32,
    planes: usize,
    /// PUs per tile (row stride of `pu_clock`).
    pus: usize,
    /// Per-PU clocks in PU cycles (SoA, `local * pus + pu`).
    pu_clock: Vec<u64>,
    /// Messages queued in each tile's IQs (SoA; the activity check).
    iq_msgs: Vec<u32>,
    /// Messages queued in each tile's CQs (SoA).
    cq_msgs: Vec<u32>,
    /// Whether each tile's init task has not yet run (SoA).
    init_pending: Vec<bool>,
    /// First NoC cycle at which each tile's earliest PU can accept a
    /// dispatch again (SoA wake cache). Strictly before it, `pu_phase`
    /// provably dispatches nothing, so a tile with no CQ backlog (whose
    /// stall counter cannot tick) skips without touching its cold state.
    /// Refreshed at the end of every non-skipped visit; PU clocks are
    /// monotone, so a stale value is merely conservative (fewer skips).
    pu_wake: Vec<u64>,
    /// First NoC cycle at which any of each tile's CQ heads matures (SoA
    /// wake cache). Strictly before it, `inject_phase` provably injects
    /// nothing for the tile. Lowered when `pu_phase` enqueues a send
    /// (the new message may be a fresh head) and recomputed from the
    /// surviving heads on every non-skipped drain pass.
    cq_wake: Vec<u64>,
    /// PU busy cycles per tile in the current statistics frame (SoA).
    pu_busy_frame: Vec<u32>,
    verbosity: Verbosity,
    frame_interval: u64,
    pointer_prefetch: bool,
    /// Per-tile pre-scheduled NoC injections (front = next due), consumed
    /// during kernel 0. Empty for ordinary applications.
    scripted: Vec<std::collections::VecDeque<ScheduledSend>>,
    /// Pending work: IQ + CQ messages + pending init tasks + scripted
    /// sends not yet injected.
    pub msg_count: i64,
    /// Running min of this cycle's tile-layer horizons (next PU dispatch,
    /// next CQ-head maturity, fresh deliveries), folded incrementally by
    /// the phase methods so `horizon` needs no extra sweep. Reset by
    /// `pu_phase`; NoC-cycle domain, may be in the past (clamped later).
    tile_horizon: u64,
    /// Latest PU completion time seen, in femtoseconds.
    pub max_pu_fs: u64,
    /// Completed statistics frames (streaming: bounded retention plus
    /// optional full-resolution JSONL spill).
    pub frames: FrameSink,
    frame_tasks: u64,
    frame_injected: u64,
    frame_ejected: u64,
    /// Tasks executed since the worker was built (telemetry; unlike
    /// `frame_tasks`, never reset at frame capture). Not persisted in
    /// snapshots — after a resume, telemetry deltas restart from the
    /// restore point, exactly like the ward engine's state.
    cum_tasks: u64,
    busy_grid: Vec<u32>,
    sends: Vec<OutMsg>,
    /// Host nanoseconds spent per driver phase by this worker (the
    /// built-in phase profiler; merged across workers into
    /// [`SimResult::host_phase_ns`]).
    pub phase: HostPhaseNs,
    /// Worklist of tiles that can act: pending init or IQ work, queued CQ
    /// messages, or an open scripted-send timetable. Tiles activate on
    /// kernel start and on packet delivery (`IqSink::offer`), and are
    /// retired by the retention pass at the end of `inject_phase`; the
    /// sweeps in `pu_phase`, `inject_phase`, and `leap_to` then cost
    /// `O(active tiles)` instead of `O(all tiles)`.
    active: ActiveSet,
}

impl<A: Application> Worker<A> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: &SystemConfig,
        app: &A,
        sw: &SoftwareConfig,
        slice: ColSlice,
        grid: GridInfo,
        channel_map: Option<ChannelMap>,
        widx: usize,
        spill: Option<FrameSpill>,
    ) -> Self {
        let ntasks = app.task_types();
        let mut iq_caps = vec![cfg.queues.iq_capacity; ntasks as usize];
        for &(t, c) in &sw.iq_capacity_override {
            if (t as usize) < iq_caps.len() {
                iq_caps[t as usize] = c;
            }
        }
        // shared per-worker: every tile clones an Arc'd capacity table and
        // a scheduler prototype instead of allocating its own copies
        let iq_caps: Arc<[u32]> = iq_caps.into();
        let policy = if sw.priority_tasks.is_empty() {
            cfg.scheduling.clone()
        } else {
            SchedulingPolicy::Priority(sw.priority_tasks.clone())
        };
        let sched_proto = Scheduler::new(policy, ntasks);
        let tiles: Vec<TileEngine> = slice
            .iter_tiles()
            .map(|_| TileEngine::new(cfg, ntasks, Arc::clone(&iq_caps), sched_proto.clone()))
            .collect();
        let states: Vec<A::Tile> = slice
            .iter_tiles()
            .map(|t| app.make_tile(t, &grid))
            .collect();
        let channels = match channel_map {
            Some(m) => vec![ChannelState::default(); m.total_channels(cfg.height()) as usize],
            None => Vec::new(),
        };
        let pointer_prefetch = matches!(
            &cfg.memory,
            MemoryConfig::Dram(d) if d.prefetch.pointer_indirection
        );
        let mut scripted: Vec<std::collections::VecDeque<ScheduledSend>> = slice
            .iter_tiles()
            .map(|t| app.scheduled_sends(t, &grid).into())
            .collect();
        if scripted.iter().all(std::collections::VecDeque::is_empty) {
            scripted = Vec::new();
        }
        let n = tiles.len();
        let pus = cfg.pus_per_tile.max(1) as usize;
        let active = ActiveSet::new(n, cfg.active_list);
        Worker {
            slice,
            tiles,
            states,
            channels,
            channel_map,
            grid,
            kernel: 0,
            cq_capacity: cfg.queues.cq_capacity,
            clock: ClockConv::from_system(cfg),
            flit_bytes: cfg.flit_bytes(),
            planes: cfg.noc.num_physical.max(1) as usize,
            pus,
            pu_clock: vec![0; n * pus],
            iq_msgs: vec![0; n],
            cq_msgs: vec![0; n],
            init_pending: vec![false; n],
            pu_wake: vec![0; n],
            cq_wake: vec![0; n],
            pu_busy_frame: vec![0; n],
            verbosity: cfg.verbosity,
            frame_interval: cfg.frame_interval_cycles.max(1),
            pointer_prefetch,
            scripted,
            msg_count: 0,
            tile_horizon: u64::MAX,
            max_pu_fs: 0,
            frames: FrameSink::new(
                cfg.frame_interval_cycles,
                cfg.frame_budget.map(|b| b as usize),
                widx,
                spill,
            ),
            frame_tasks: 0,
            frame_injected: 0,
            frame_ejected: 0,
            cum_tasks: 0,
            // the per-tile scratch grid is only ever read by V2+ frame
            // captures; below that it would be dead weight per worker
            busy_grid: if cfg.verbosity >= Verbosity::V2 {
                vec![0; (cfg.width() * cfg.height()) as usize]
            } else {
                Vec::new()
            },
            sends: Vec::new(),
            phase: HostPhaseNs::default(),
            active,
        }
    }

    /// Whether the TSU of tile `local` has anything to dispatch.
    #[inline]
    fn has_work(&self, local: usize) -> bool {
        self.init_pending[local] || self.iq_msgs[local] > 0
    }

    /// Index of tile `local`'s PU with the earliest clock.
    #[inline]
    fn earliest_pu(&self, local: usize) -> usize {
        let clocks = &self.pu_clock[local * self.pus..(local + 1) * self.pus];
        let mut best = 0;
        for (i, &c) in clocks.iter().enumerate() {
            if c < clocks[best] {
                best = i;
            }
        }
        best
    }

    /// Marks every tile's init task pending for `kernel`.
    pub fn start_kernel(&mut self, kernel: u32) {
        self.kernel = kernel;
        // every tile owes an init task, so every tile is active
        self.active.activate_all();
        self.init_pending.fill(true);
        self.msg_count += self.tiles.len() as i64;
        if kernel == 0 {
            // scripted sends count as pending work until injected, so the
            // quiescence decision cannot fire while a timetable is open
            self.msg_count += self.scripted.iter().map(|q| q.len() as i64).sum::<i64>();
        }
    }

    /// Dispatches ready tasks on every PU whose clock has been caught up
    /// by the network time (paper §III-C synchronization rule).
    pub fn pu_phase(&mut self, app: &A, cycle: u64) {
        let t0 = Instant::now();
        self.tile_horizon = u64::MAX;
        let now_pu = self.clock.pu_cycle_floor(cycle);
        // fold in tiles activated by deliveries since the last sweep
        // (net_step, or a leap's backfill); every tile with work is on
        // the list, so skipping the rest is exact
        self.active.refresh();
        self.phase.worklist += t0.elapsed().as_nanos() as u64;
        for local in self.active.iter() {
            let local = local as usize;
            if !self.has_work(local) {
                continue;
            }
            // strictly before `pu_wake` no PU accepts a dispatch, and a
            // CQ backlog within the per-queue capacity (total ≤ cap ⇒
            // every queue ≤ cap) cannot tick the stall counter either:
            // the whole visit is a provable no-op beyond its horizon
            if cycle < self.pu_wake[local] && self.cq_msgs[local] <= self.cq_capacity {
                self.tile_horizon = self.tile_horizon.min(self.pu_wake[local]);
                continue;
            }
            let tile_g = self.slice.global(local);
            // Channel queues live in the PLM and spill beyond their
            // configured capacity (paper §III-A "Queues"); over-capacity
            // CQs are counted as send-side stall pressure but do not block
            // dispatch, which keeps acyclic task chains deadlock-free.
            if self.cq_msgs[local] > 0 && self.tiles[local].cq_over(self.cq_capacity) {
                self.tiles[local].counters.cq_stall_cycles += 1;
            }
            loop {
                let pu = self.earliest_pu(local);
                let pu_clk = self.pu_clock[local * self.pus + pu];
                if !self.clock.pu_ready(pu_clk, cycle) {
                    break;
                }
                let start = pu_clk.max(now_pu);
                let t = &mut self.tiles[local];
                let (is_init, task, payload) = if self.init_pending[local] {
                    self.init_pending[local] = false;
                    self.msg_count -= 1;
                    (true, 0u8, Payload::empty())
                } else if let Some(task) = t.sched.pick(t.iqs.as_slice()) {
                    let payload = t
                        .iqs
                        .pop_front(task as usize)
                        .expect("scheduler picked a non-empty queue");
                    self.iq_msgs[local] -= 1;
                    self.msg_count -= 1;
                    (false, task, payload)
                } else {
                    break;
                };
                // dequeue cost for message-triggered tasks
                let qlat = if is_init {
                    0
                } else {
                    t.mem.queue_read(payload.len().max(1) as u64)
                };
                let channel_idx = self.channel_map.map(|m| {
                    let (x, y) = (tile_g % self.grid.width, tile_g / self.grid.width);
                    m.channel_of(x, y) as usize
                });
                // TSU pointer-indirection prefetch: warm the line the
                // *next* queued task of this type will touch, overlapping
                // it with the current task's execution (paper §III-A).
                if self.pointer_prefetch && !is_init {
                    if let Some(next) = t.iqs.front(task as usize) {
                        if let Some(addr) =
                            app.prefetch_addr(task, next.as_slice(), tile_g, &self.grid)
                        {
                            let ch = channel_idx.map(|i| &mut self.channels[i]);
                            t.mem.prefetch(addr, start, ch);
                        }
                    }
                }
                let channel = channel_idx.map(|i| &mut self.channels[i]);
                let mut ctx = TaskCtx::new(
                    tile_g,
                    self.kernel,
                    self.grid,
                    start + qlat,
                    &mut t.mem,
                    channel,
                    &mut t.counters,
                    &mut self.sends,
                );
                if is_init {
                    app.init(&mut self.states[local], &mut ctx);
                } else {
                    app.handle(&mut self.states[local], task, payload.as_slice(), &mut ctx);
                }
                // one TSU dispatch cycle + dequeue + modeled task latency
                let duration = 1 + qlat + ctx.elapsed_cycles();
                let end = start + duration;
                self.pu_clock[local * self.pus + pu] = end;
                t.counters.tasks_executed += 1;
                t.counters.busy_cycles += duration;
                self.pu_busy_frame[local] =
                    self.pu_busy_frame[local].saturating_add(duration.min(u32::MAX as u64) as u32);
                self.frame_tasks += 1;
                self.cum_tasks += 1;
                let end_fs = self.clock.pu_cycle_fs(end);
                if end_fs > self.max_pu_fs {
                    self.max_pu_fs = end_fs;
                }
                // drain produced messages into IQs (local) / CQs (remote)
                for msg in self.sends.drain(..) {
                    let t = &mut self.tiles[local];
                    if msg.dst == tile_g {
                        t.iqs.q_mut(msg.task as usize).push_back(msg.payload);
                        self.iq_msgs[local] += 1;
                        self.msg_count += 1;
                    } else {
                        // the new message may become a fresh CQ head:
                        // lower the inject wake cache to its maturity
                        let due = self.clock.noc_cycle_for_pu(msg.at_pu_cycle);
                        t.cqs.q_mut(msg.task as usize).push_back(msg);
                        self.cq_msgs[local] += 1;
                        self.msg_count += 1;
                        if due < self.cq_wake[local] {
                            self.cq_wake[local] = due;
                        }
                    }
                }
            }
            // tasks left undispatched wait on the earliest PU clock
            let pu = self.pu_clock[local * self.pus + self.earliest_pu(local)];
            let wake = self.clock.noc_cycle_for_pu(pu);
            self.pu_wake[local] = wake;
            if self.has_work(local) {
                self.tile_horizon = self.tile_horizon.min(wake);
            }
        }
        self.phase.pu += t0.elapsed().as_nanos() as u64;
    }

    /// Drains ready channel-queue heads into the NoC planes, then retires
    /// tiles with no latent work from the active worklist.
    ///
    /// Each (tile, task) run drains through one [`muchisim_noc::Shard`]
    /// injection batch: admission control runs on a locally cached
    /// occupancy value and the occupancy/in-flight atomics are updated
    /// once per run, not once per packet (exact because the inject queue
    /// is single-writer during the barrier-separated local phase).
    pub fn inject_phase(&mut self, shards: &mut [&mut Shard], shareds: &[&SharedNet], cycle: u64) {
        let t0 = Instant::now();
        // the set is unchanged since pu_phase's refresh: task sends
        // target the sending tile's own queues, so no tile activates or
        // retires between the two sweeps
        for local in self.active.iter() {
            let local = local as usize;
            if self.cq_msgs[local] == 0 {
                continue;
            }
            // every queued head matures no earlier than `cq_wake`:
            // strictly before it the drain pass is a provable no-op
            if cycle < self.cq_wake[local] {
                self.tile_horizon = self.tile_horizon.min(self.cq_wake[local]);
                continue;
            }
            let tile_g = self.slice.global(local);
            let t = &mut self.tiles[local];
            // earliest maturity among heads left behind by this pass
            let mut wake = u64::MAX;
            for task in 0..t.cqs.len() {
                let Some(head) = t.cqs.front(task) else {
                    continue;
                };
                let ready_noc = self.clock.noc_cycle_for_pu(head.at_pu_cycle);
                if ready_noc > cycle {
                    // immature head: no batch to open, it matures at
                    // ready_noc
                    self.tile_horizon = self.tile_horizon.min(ready_noc);
                    wake = wake.min(ready_noc);
                    continue;
                }
                let plane = task % self.planes;
                let mut batch = shards[plane].inject_batch(shareds[plane], tile_g);
                while let Some(head) = t.cqs.front(task) {
                    let ready_noc = self.clock.noc_cycle_for_pu(head.at_pu_cycle);
                    if ready_noc > cycle {
                        // immature head: it matures at ready_noc
                        self.tile_horizon = self.tile_horizon.min(ready_noc);
                        wake = wake.min(ready_noc);
                        break;
                    }
                    // move the payload out instead of cloning it; a
                    // refused packet hands it back for restore
                    let msg = t.cqs.pop_front(task).expect("checked head");
                    let at_pu_cycle = msg.at_pu_cycle;
                    let flits = 1 + msg.payload.size_bytes().div_ceil(self.flit_bytes);
                    let mut pkt =
                        Packet::unicast(tile_g, msg.dst, task as u8, msg.payload, flits as u16)
                            .ready_at(cycle);
                    if let Some(op) = msg.reduce {
                        pkt = pkt.with_reduce(op);
                    }
                    match batch.offer(pkt) {
                        Ok(()) => {
                            self.cq_msgs[local] -= 1;
                            self.msg_count -= 1;
                            self.frame_injected += 1;
                        }
                        Err(pkt) => {
                            // inject queue full: restore the head, retry
                            // next cycle
                            t.cqs.q_mut(task).push_front(OutMsg {
                                dst: pkt.dst,
                                task: task as u8,
                                payload: pkt.payload,
                                at_pu_cycle,
                                reduce: pkt.reduce,
                            });
                            self.tile_horizon = self.tile_horizon.min(cycle + 1);
                            wake = wake.min(cycle + 1);
                            break;
                        }
                    }
                }
                batch.commit();
            }
            self.cq_wake[local] = wake;
        }
        if !self.scripted.is_empty() {
            self.scripted_inject_phase(shards, shareds, cycle);
        }
        // retention pass: a tile stays active only while it has latent
        // work — a pending init/IQ task, a queued CQ message, or an open
        // scripted timetable. Deliveries during net_step re-activate.
        // Reads only the dense SoA arrays — this is the whole-worklist
        // walk the dense regime pays every cycle.
        if self.active.enabled() {
            let w0 = Instant::now();
            let init_pending = &self.init_pending;
            let iq_msgs = &self.iq_msgs;
            let cq_msgs = &self.cq_msgs;
            let scripted = &self.scripted;
            self.active.retain(|local| {
                let l = local as usize;
                init_pending[l]
                    || iq_msgs[l] > 0
                    || cq_msgs[l] > 0
                    || scripted.get(l).is_some_and(|q| !q.is_empty())
            });
            self.phase.worklist += w0.elapsed().as_nanos() as u64;
        }
        self.phase.inject += t0.elapsed().as_nanos() as u64;
    }

    /// Drains due pre-scheduled sends into the NoC planes (after the
    /// channel queues, so apps mixing both keep CQ traffic first within a
    /// cycle). Runs of consecutive same-plane due heads share one
    /// injection batch.
    fn scripted_inject_phase(
        &mut self,
        shards: &mut [&mut Shard],
        shareds: &[&SharedNet],
        cycle: u64,
    ) {
        // scripted tiles stay on the worklist until their timetable
        // drains (the retention pass keeps them), so the active sweep
        // sees every due head
        for local in self.active.iter() {
            let local = local as usize;
            let tile_g = self.slice.global(local);
            'tile: while let Some(head) = self.scripted[local].front() {
                if head.cycle > cycle {
                    // not due yet: the schedule is sorted, so this head is
                    // this tile's next injection event
                    self.tile_horizon = self.tile_horizon.min(head.cycle);
                    break;
                }
                let plane = head.task as usize % self.planes;
                let mut batch = shards[plane].inject_batch(shareds[plane], tile_g);
                let mut stalled = false;
                while let Some(head) = self.scripted[local].front() {
                    if head.cycle > cycle {
                        self.tile_horizon = self.tile_horizon.min(head.cycle);
                        stalled = true;
                        break;
                    }
                    if head.task as usize % self.planes != plane {
                        break; // plane changed: close this run's batch
                    }
                    let head = self.scripted[local].pop_front().expect("checked head");
                    let born = head.cycle;
                    let flits = 1 + head.payload.size_bytes().div_ceil(self.flit_bytes);
                    let mut pkt =
                        Packet::unicast(tile_g, head.dst, head.task, head.payload, flits as u16)
                            .ready_at(cycle)
                            .born(born);
                    if let Some(op) = head.reduce {
                        pkt = pkt.with_reduce(op);
                    }
                    match batch.offer(pkt) {
                        Ok(()) => {
                            self.msg_count -= 1;
                            self.frame_injected += 1;
                        }
                        Err(pkt) => {
                            // inject queue full: restore the head, retry
                            // next cycle
                            self.scripted[local].push_front(ScheduledSend {
                                cycle: born,
                                dst: pkt.dst,
                                task: pkt.task,
                                payload: pkt.payload,
                                reduce: pkt.reduce,
                            });
                            self.tile_horizon = self.tile_horizon.min(cycle + 1);
                            stalled = true;
                            break;
                        }
                    }
                }
                batch.commit();
                if stalled {
                    break 'tile;
                }
            }
        }
    }

    /// Applies every shard's cycle-boundary bookkeeping (deferred frees,
    /// deferred pushes, mailbox drains) for the next cycle. Must run for
    /// all shards (with a barrier in parallel mode) before any shard's
    /// step for that cycle.
    pub fn begin_cycle(&mut self, shards: &mut [&mut Shard], shareds: &[&SharedNet]) {
        let t0 = Instant::now();
        for (shard, shared) in shards.iter_mut().zip(shareds) {
            shard.begin_cycle(shared);
        }
        self.phase.net += t0.elapsed().as_nanos() as u64;
    }

    /// Steps this worker's shard of every NoC plane for `cycle`.
    pub fn net_step(&mut self, shards: &mut [&mut Shard], shareds: &[&SharedNet], cycle: u64) {
        let t0 = Instant::now();
        let mut sink = IqSink {
            tiles: &mut self.tiles,
            iq_msgs: &mut self.iq_msgs,
            pu_clock: &self.pu_clock,
            pus: self.pus,
            slice: &self.slice,
            msg_count: &mut self.msg_count,
            delivered: &mut self.frame_ejected,
            tile_horizon: &mut self.tile_horizon,
            clock: self.clock,
            active: &mut self.active,
        };
        for (shard, shared) in shards.iter_mut().zip(shareds) {
            shard.step(shared, cycle, &mut sink);
        }
        self.phase.net += t0.elapsed().as_nanos() as u64;
    }

    /// Records a statistics frame if `cycle` closes one.
    pub fn frame_tick(&mut self, shards: &mut [&mut Shard], cycle: u64) {
        if self.verbosity == Verbosity::V0 {
            return;
        }
        if !(cycle + 1).is_multiple_of(self.frame_interval) {
            return;
        }
        self.capture_frame(shards, cycle + 1 - self.frame_interval);
    }

    /// Captures the current frame unconditionally (used at kernel end).
    pub fn capture_frame(&mut self, shards: &mut [&mut Shard], start_cycle: u64) {
        if self.verbosity == Verbosity::V0 {
            return;
        }
        let mut frame = Frame {
            start_cycle,
            tasks_delta: std::mem::take(&mut self.frame_tasks),
            injected_delta: std::mem::take(&mut self.frame_injected),
            ejected_delta: std::mem::take(&mut self.frame_ejected),
            ..Default::default()
        };
        if self.verbosity >= Verbosity::V2 {
            for shard in shards.iter_mut() {
                shard.take_busy(&mut self.busy_grid, self.grid.width);
            }
            for local in 0..self.tiles.len() {
                let g = self.slice.global(local);
                let busy = std::mem::take(&mut self.busy_grid[g as usize]);
                if busy > 0 {
                    frame.router_busy.push((g, busy));
                }
                let pu = std::mem::take(&mut self.pu_busy_frame[local]);
                if pu > 0 {
                    frame.pu_busy.push((g, pu));
                }
                if self.verbosity >= Verbosity::V3 && self.iq_msgs[local] > 0 {
                    frame.iq_occupancy.push((g, self.iq_msgs[local]));
                }
            }
        }
        self.frames.push(frame);
    }

    /// Closes the kernel's last partial statistics frame at drain cycle
    /// `cycle`.
    ///
    /// When the kernel drains exactly on a frame boundary, `frame_tick`
    /// has already closed the frame covering `cycle`; re-capturing would
    /// push an empty duplicate with the same `start_cycle`.
    pub fn close_kernel_frame(&mut self, shards: &mut [&mut Shard], cycle: u64) {
        if self.verbosity == Verbosity::V0 || (cycle + 1).is_multiple_of(self.frame_interval) {
            return;
        }
        self.capture_frame(shards, cycle - cycle % self.frame_interval);
    }

    /// This worker's next-event horizon after finishing `cycle`: the
    /// earliest future NoC cycle at which any of its tiles, DRAM
    /// channels, or NoC shards can act, or `u64::MAX` if the slice is
    /// completely idle. Never less than `cycle + 1`.
    ///
    /// The tile layer's horizon was folded incrementally while `pu_phase`,
    /// `inject_phase`, and `net_step` swept the tiles anyway, so dense
    /// cycles (tile horizon already at `cycle + 1`) decide in O(1) and
    /// never touch the NoC shards. Cross-shard mailboxes are deliberately
    /// *not* folded in here — other workers may still be writing them;
    /// the driver's leader action adds them after the step barrier.
    pub fn horizon(&self, shards: &[&mut Shard], cycle: u64) -> u64 {
        let floor = cycle + 1;
        let mut horizon = self.tile_horizon;
        if horizon <= floor {
            return floor;
        }
        let now_pu = self.clock.pu_cycle_floor(cycle);
        for ch in &self.channels {
            if let Some(pu) = ch.next_event_cycle(now_pu) {
                horizon = horizon.min(self.clock.noc_cycle_for_pu(pu));
            }
        }
        for shard in shards.iter() {
            if horizon <= floor {
                return floor;
            }
            if let Some(c) = shard.next_event_cycle(cycle) {
                horizon = horizon.min(c);
            }
        }
        horizon.max(floor)
    }

    /// Applies the side effects the lockstep driver would have produced
    /// while stepping through the skipped cycles `(cycle, next)`: batch
    /// CQ-stall accounting for backpressured tiles (their state is
    /// frozen across the gap, so the per-cycle increment is constant)
    /// and backfilled statistics frames at every crossed boundary.
    pub fn leap_to(&mut self, shards: &mut [&mut Shard], cycle: u64, next: u64) {
        let skipped = next - cycle - 1;
        if skipped == 0 {
            return;
        }
        let t0 = Instant::now();
        // every tile with work is active (deliveries during this cycle's
        // net_step activated theirs), so the batch accounting only needs
        // the worklist
        self.active.refresh();
        self.phase.worklist += t0.elapsed().as_nanos() as u64;
        for local in self.active.iter() {
            let local = local as usize;
            if self.has_work(local)
                && self.cq_msgs[local] > 0
                && self.tiles[local].cq_over(self.cq_capacity)
            {
                self.tiles[local].counters.cq_stall_cycles += skipped;
            }
        }
        if self.verbosity != Verbosity::V0 {
            for start in self.frames.lockstep_capture_starts(cycle, next) {
                self.capture_frame(shards, start);
            }
        }
        self.phase.net += t0.elapsed().as_nanos() as u64;
    }

    /// Merges this worker's tile counters into `total`.
    pub fn merge_counters(&self, total: &mut SimCounters) {
        for t in &self.tiles {
            total.pu.merge(&t.counters);
            total.mem.merge(t.mem.counters());
        }
    }

    /// Deposits this worker's share of a telemetry sample: cumulative
    /// task/message counters, activity gauges, and NoC statistics over
    /// its shards. Cheap (no per-tile sweep), read-only, and built from
    /// deterministic simulation state only — host timing is added by the
    /// leader's aggregator.
    pub fn telemetry_sample(&self, shards: &[&mut Shard]) -> muchisim_telemetry::WorkerSample {
        let mut s = muchisim_telemetry::WorkerSample {
            tasks: self.cum_tasks,
            pending: self.msg_count,
            active_tiles: self.active.active_count() as u64,
            tiles: self.tiles.len() as u64,
            ..Default::default()
        };
        for shard in shards.iter() {
            let c = shard.counters();
            s.injected += c.injected;
            s.ejected += c.ejected;
            s.flit_hops += c.flit_hops_by_class.iter().sum::<u64>();
            s.queued_msgs += shard.queued_packets();
            s.active_routers += shard.active_routers() as u64;
            s.latency.merge(shard.latency());
        }
        s.phase_ns = [
            self.phase.pu,
            self.phase.inject,
            self.phase.net,
            self.phase.worklist,
        ];
        s
    }

    /// Per-tile queue backlog for a ward report: IQ/CQ/scripted message
    /// counts plus packets parked in this tile's router input queues,
    /// for every local tile with a non-zero backlog, worst first
    /// (capped at `top`). Only runs on the slow path after a ward trips.
    pub fn telemetry_diag(&self, shards: &[&mut Shard], top: usize) -> Vec<crate::ward::TileDiag> {
        let mut diags: Vec<crate::ward::TileDiag> = Vec::new();
        for local in 0..self.tiles.len() {
            let tile = self.slice.global(local);
            let parked = shards
                .iter()
                .map(|s| s.queued_at(tile, self.grid.width))
                .sum::<u32>();
            let d = crate::ward::TileDiag {
                tile,
                iq_msgs: self.iq_msgs[local],
                cq_msgs: self.cq_msgs[local],
                scripted: self.scripted.get(local).map_or(0, |q| q.len() as u32),
                parked_packets: parked,
            };
            if d.backlog() > 0 {
                diags.push(d);
            }
        }
        diags.sort_by(|a, b| b.backlog().cmp(&a.backlog()).then(a.tile.cmp(&b.tile)));
        diags.truncate(top);
        diags
    }

    /// Total host bytes of this worker's simulation state: the tile
    /// engines (with their lazily-allocated queue banks), the SoA
    /// hot-state arrays, the application tile states, DRAM channels,
    /// frame telemetry, and scratch buffers.
    pub fn state_bytes(&self, app: &A) -> u64 {
        let tiles = self.tiles.capacity() as u64 * std::mem::size_of::<TileEngine>() as u64
            + self.tiles.iter().map(TileEngine::heap_bytes).sum::<u64>();
        let states = self.states.capacity() as u64 * std::mem::size_of::<A::Tile>() as u64
            + self
                .states
                .iter()
                .map(|s| app.tile_state_bytes(s))
                .sum::<u64>();
        std::mem::size_of::<Self>() as u64
            + tiles
            + states
            + self.pu_clock.capacity() as u64 * 8
            + self.iq_msgs.capacity() as u64 * 4
            + self.cq_msgs.capacity() as u64 * 4
            + self.init_pending.capacity() as u64
            + self.pu_wake.capacity() as u64 * 8
            + self.cq_wake.capacity() as u64 * 8
            + self.pu_busy_frame.capacity() as u64 * 4
            + self.channels.capacity() as u64 * std::mem::size_of::<ChannelState>() as u64
            // shared per-worker capacity table, counted once
            + self.tiles.first().map_or(0, |t| t.iq_caps.len() as u64 * 4)
            + self.frames.heap_bytes()
            + self.busy_grid.capacity() as u64 * 4
            + self.sends.capacity() as u64 * std::mem::size_of::<OutMsg>() as u64
            + self.active.heap_bytes()
            + self.scripted.capacity() as u64
                * std::mem::size_of::<std::collections::VecDeque<ScheduledSend>>() as u64
            + self
                .scripted
                .iter()
                .map(|q| {
                    q.capacity() as u64 * std::mem::size_of::<ScheduledSend>() as u64
                        + q.iter().map(|s| s.payload.heap_bytes()).sum::<u64>()
                })
                .sum::<u64>()
    }

    /// Streams this worker's checkpoint chunk directly into `buf`, in the
    /// exact [`crate::snapshot::WorkerChunk`] wire format, without
    /// materializing the intermediate record structs. This is the hot
    /// path behind periodic checkpoints: on a 65k-tile grid the
    /// struct-based path performs hundreds of thousands of short-lived
    /// allocations per snapshot (queue clones, per-tile vectors, a frame
    /// log copy), which dominates the checkpoint cost; writing straight
    /// from engine state into a reused buffer removes all of them. Must
    /// be called at the post-`begin_cycle` quiescent point of `cycle`.
    /// `debug_assert`-checked against [`Self::snapshot_chunk`]`.encode()`
    /// in the parallel driver, so every debug-mode checkpoint test proves
    /// the two encoders agree byte for byte.
    pub(crate) fn encode_chunk_into(
        &self,
        app: &A,
        shards: &[&mut Shard],
        cycle: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), String> {
        use crate::snapshot as snap;
        let width = self.grid.width;
        snap::put_u64(buf, self.max_pu_fs);
        snap::put_u64(buf, self.frame_tasks);
        snap::put_u64(buf, self.frame_injected);
        snap::put_u64(buf, self.frame_ejected);
        snap::put_frame_log(buf, self.frames.log());
        snap::put_u32(buf, shards.len() as u32);
        for sh in shards {
            snap::put_noc_counters(buf, sh.counters());
            snap::put_latency(buf, sh.latency());
            let packets = sh.snapshot_packets(width);
            snap::put_u32(buf, packets.len() as u32);
            for (tile, port, pkt) in packets {
                snap::put_u32(buf, tile);
                snap::put_u8(buf, port);
                snap::put_packet(buf, pkt);
            }
            let links = sh.snapshot_links(width, cycle);
            snap::put_u32(buf, links.len() as u32);
            for (tile, dir, until) in links {
                snap::put_u32(buf, tile);
                snap::put_u8(buf, dir);
                snap::put_u64(buf, until);
            }
            let rr = sh.snapshot_rr(width);
            snap::put_u32(buf, rr.len() as u32);
            for (tile, dir, v) in rr {
                snap::put_u32(buf, tile);
                snap::put_u8(buf, dir);
                snap::put_u8(buf, v);
            }
            let busy = sh.snapshot_busy_frame(width);
            snap::put_u32(buf, busy.len() as u32);
            for (tile, v) in busy {
                snap::put_u32(buf, tile);
                snap::put_u32(buf, v);
            }
        }
        snap::put_u32(buf, self.tiles.len() as u32);
        for (local, t) in self.tiles.iter().enumerate() {
            let tile_g = self.slice.global(local);
            snap::put_u32(buf, tile_g);
            snap::put_bool(buf, self.init_pending[local]);
            snap::put_u32(buf, self.pu_busy_frame[local]);
            snap::put_u8(buf, t.sched.rr_last());
            snap::put_u64s(
                buf,
                &self.pu_clock[local * self.pus..(local + 1) * self.pus],
            );
            snap::put_pu_counters(buf, &t.counters);
            snap::put_mem_counters(buf, t.mem.counters());
            match t.mem.snapshot_cache() {
                Some(json) => snap::put_bytes(buf, json.as_bytes()),
                None => snap::put_u32(buf, 0),
            }
            let iqs = t.iqs.as_slice();
            snap::put_u32(buf, iqs.len() as u32);
            for q in iqs {
                snap::put_u32(buf, q.len() as u32);
                for p in q {
                    snap::put_payload(buf, p);
                }
            }
            let cqs = t.cqs.as_slice();
            snap::put_u32(buf, cqs.len() as u32);
            for q in cqs {
                snap::put_u32(buf, q.len() as u32);
                for m in q {
                    snap::put_out_msg(buf, m);
                }
            }
            match self.scripted.get(local) {
                Some(q) => {
                    snap::put_u32(buf, q.len() as u32);
                    for s in q {
                        snap::put_scheduled_send(buf, s);
                    }
                }
                None => snap::put_u32(buf, 0),
            }
            // app blob: reserve the length prefix, let the app append in
            // place, then patch the prefix with the appended size
            let at = buf.len();
            snap::put_u32(buf, 0);
            app.snapshot_tile(&self.states[local], buf)
                .map_err(|e| format!("tile {tile_g}: {e}"))?;
            let len = (buf.len() - at - 4) as u32;
            buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
        }
        // only the owning worker ever advances a channel's clock; the
        // other workers' copies stay at zero, so non-zero == owned
        let n_ch = self
            .channels
            .iter()
            .filter(|ch| ch.transactions != 0)
            .count();
        snap::put_u32(buf, n_ch as u32);
        for (id, ch) in self.channels.iter().enumerate() {
            if ch.transactions != 0 {
                snap::put_u32(buf, id as u32);
                snap::put_u64(buf, ch.transactions);
            }
        }
        Ok(())
    }

    /// Assembles this worker's checkpoint chunk: every tile's dynamic
    /// state, every owned NoC shard's queued packets and link clocks, the
    /// owned DRAM channels, and the open-frame telemetry. Must be called
    /// at the post-`begin_cycle` quiescent point of `cycle`.
    ///
    /// The live driver streams chunks through [`Self::encode_chunk_into`]
    /// instead; this reference builder survives as the debug-mode
    /// cross-check oracle (and the encode/decode round-trip tests).
    #[cfg_attr(not(any(test, debug_assertions)), allow(dead_code))]
    pub(crate) fn snapshot_chunk(
        &self,
        app: &A,
        shards: &[&mut Shard],
        cycle: u64,
    ) -> Result<crate::snapshot::WorkerChunk, String> {
        use crate::snapshot::{PlaneRecord, TileRecord, WorkerChunk};
        let width = self.grid.width;
        let planes: Vec<PlaneRecord> = shards
            .iter()
            .map(|sh| PlaneRecord {
                counters: *sh.counters(),
                latency: sh.latency().clone(),
                packets: sh
                    .snapshot_packets(width)
                    .into_iter()
                    .map(|(tile, port, pkt)| (tile, port, pkt.clone()))
                    .collect(),
                links: sh.snapshot_links(width, cycle),
                rr: sh.snapshot_rr(width),
                busy_frame: sh.snapshot_busy_frame(width),
            })
            .collect();
        let mut tiles = Vec::with_capacity(self.tiles.len());
        for (local, t) in self.tiles.iter().enumerate() {
            let tile_g = self.slice.global(local);
            let mut app_bytes = Vec::new();
            app.snapshot_tile(&self.states[local], &mut app_bytes)
                .map_err(|e| format!("tile {tile_g}: {e}"))?;
            tiles.push(TileRecord {
                tile: tile_g,
                init_pending: self.init_pending[local],
                pu_busy_frame: self.pu_busy_frame[local],
                rr_last: t.sched.rr_last(),
                pu_clock: self.pu_clock[local * self.pus..(local + 1) * self.pus].to_vec(),
                pu: t.counters,
                mem: *t.mem.counters(),
                cache: t.mem.snapshot_cache(),
                iqs: t
                    .iqs
                    .as_slice()
                    .iter()
                    .map(|q| q.iter().cloned().collect())
                    .collect(),
                cqs: t
                    .cqs
                    .as_slice()
                    .iter()
                    .map(|q| q.iter().cloned().collect())
                    .collect(),
                scripted: self
                    .scripted
                    .get(local)
                    .map(|q| q.iter().cloned().collect())
                    .unwrap_or_default(),
                app: app_bytes,
            });
        }
        // only the owning worker ever advances a channel's clock; the
        // other workers' copies stay at zero, so non-zero == owned
        let channels = self
            .channels
            .iter()
            .enumerate()
            .filter(|&(_, ch)| ch.transactions != 0)
            .map(|(id, ch)| (id as u32, ch.transactions))
            .collect();
        Ok(WorkerChunk {
            max_pu_fs: self.max_pu_fs,
            frame_tasks: self.frame_tasks,
            frame_injected: self.frame_injected,
            frame_ejected: self.frame_ejected,
            frames: self.frames.log().clone(),
            planes,
            tiles,
            channels,
        })
    }

    /// Overwrites this worker's dynamic state from a validated snapshot
    /// (the tile layer only; NoC shards are restored separately through
    /// [`restore_networks`]). The derived caches — message counts, wake
    /// caches, the active worklist — are recomputed rather than
    /// deserialized: a zero wake cache is a conservative lower bound and
    /// `activate_all` is a superset of the live worklist, both of which
    /// the sweeps resolve bit-identically on the first cycle.
    pub(crate) fn restore_from_snapshot(
        &mut self,
        app: &A,
        snap: &crate::snapshot::SnapshotData,
        widx: usize,
    ) -> Result<(), SimError> {
        let fail = |why: String| SimError::Snapshot(why);
        self.kernel = snap.kernel;
        for local in 0..self.tiles.len() {
            let g = self.slice.global(local);
            let rec = &snap.tiles[g as usize];
            if rec.pu_clock.len() != self.pus {
                return Err(fail(format!(
                    "tile {g}: snapshot has {} PU clocks, configuration has {}",
                    rec.pu_clock.len(),
                    self.pus
                )));
            }
            self.init_pending[local] = rec.init_pending;
            self.pu_busy_frame[local] = rec.pu_busy_frame;
            self.pu_clock[local * self.pus..(local + 1) * self.pus].copy_from_slice(&rec.pu_clock);
            let t = &mut self.tiles[local];
            let ntasks = t.iqs.len();
            if rec.iqs.len() > ntasks || rec.cqs.len() > ntasks {
                return Err(fail(format!(
                    "tile {g}: snapshot declares more task types than the application"
                )));
            }
            t.sched.set_rr_last(rec.rr_last);
            t.counters = rec.pu;
            t.mem.restore_counters(rec.mem);
            if let Some(json) = &rec.cache {
                t.mem
                    .restore_cache(json)
                    .map_err(|e| fail(format!("tile {g}: {e}")))?;
            }
            let mut iq_total = 0u32;
            for (task, q) in rec.iqs.iter().enumerate() {
                iq_total += q.len() as u32;
                for p in q {
                    t.iqs.q_mut(task).push_back(p.clone());
                }
            }
            self.iq_msgs[local] = iq_total;
            let mut cq_total = 0u32;
            for (task, q) in rec.cqs.iter().enumerate() {
                cq_total += q.len() as u32;
                for m in q {
                    t.cqs.q_mut(task).push_back(m.clone());
                }
            }
            self.cq_msgs[local] = cq_total;
            if !self.scripted.is_empty() {
                self.scripted[local] = rec.scripted.iter().cloned().collect();
            } else if !rec.scripted.is_empty() {
                return Err(fail(format!(
                    "tile {g}: snapshot carries scheduled sends the application does not \
                     declare"
                )));
            }
            app.restore_tile(&mut self.states[local], &rec.app)
                .map_err(|e| fail(format!("tile {g}: {e}")))?;
        }
        // pending-work count: init tasks + queued messages + (during
        // kernel 0) the open scripted timetables, exactly mirroring what
        // `start_kernel` + the phase decrements would have left behind
        let mut count = 0i64;
        for local in 0..self.tiles.len() {
            count += i64::from(self.init_pending[local]);
            count += i64::from(self.iq_msgs[local]) + i64::from(self.cq_msgs[local]);
        }
        if snap.kernel == 0 {
            count += self.scripted.iter().map(|q| q.len() as i64).sum::<i64>();
        }
        self.msg_count = count;
        // the snapshot's open-frame scalars and captured frames are
        // global; worker 0 adopts them whole and the others contribute
        // zero-delta placeholders, so the positional frame merge at
        // `finish` reconstructs the same log an uninterrupted run keeps
        if widx == 0 {
            self.max_pu_fs = snap.max_pu_fs;
            self.frame_tasks = snap.frame_tasks;
            self.frame_injected = snap.frame_injected;
            self.frame_ejected = snap.frame_ejected;
            for f in &snap.frames.frames {
                self.frames.push(f.clone());
            }
        } else {
            for f in &snap.frames.frames {
                self.frames.push(Frame {
                    start_cycle: f.start_cycle,
                    ..Default::default()
                });
            }
        }
        if let Some(map) = self.channel_map {
            if !snap.channels.is_empty() {
                let mut owned = vec![false; self.channels.len()];
                for tile in self.slice.iter_tiles() {
                    let (x, y) = (tile % self.grid.width, tile / self.grid.width);
                    owned[map.channel_of(x, y) as usize] = true;
                }
                for &(id, tx) in &snap.channels {
                    match owned.get(id as usize) {
                        Some(true) => self.channels[id as usize].transactions = tx,
                        Some(false) => {}
                        None => {
                            return Err(fail(format!(
                                "channel record {id} outside the {} configured channels",
                                self.channels.len()
                            )))
                        }
                    }
                }
            }
        }
        // every tile with restored work must be on the worklist; a
        // superset is exact (idle tiles retire on the first retention
        // pass without observable effect)
        self.active.activate_all();
        Ok(())
    }
}

impl<A: Application> std::fmt::Debug for Worker<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("cols", &self.slice.cols)
            .field("msg_count", &self.msg_count)
            .finish()
    }
}

/// The [`EjectSink`] bridging delivered packets into tile input queues.
struct IqSink<'a> {
    tiles: &'a mut [TileEngine],
    iq_msgs: &'a mut [u32],
    pu_clock: &'a [u64],
    pus: usize,
    slice: &'a ColSlice,
    msg_count: &'a mut i64,
    delivered: &'a mut u64,
    tile_horizon: &'a mut u64,
    clock: ClockConv,
    active: &'a mut ActiveSet,
}

impl EjectSink for IqSink<'_> {
    fn offer(&mut self, tile: u32, pkt: Packet) -> Result<(), Packet> {
        let local = self.slice.local(tile);
        let t = &mut self.tiles[local];
        let task = pkt.task as usize;
        if t.iqs.q_len(task) >= t.iq_caps[task] as usize {
            return Err(pkt);
        }
        t.mem.queue_write(pkt.payload.len().max(1) as u64);
        t.iqs.q_mut(task).push_back(pkt.payload);
        self.iq_msgs[local] += 1;
        *self.msg_count += 1;
        *self.delivered += 1;
        // a delivery is the one event that wakes an idle tile
        self.active.activate(local as u32);
        // the delivery may be dispatchable as soon as a PU frees up
        let pu = self.pu_clock[local * self.pus..(local + 1) * self.pus]
            .iter()
            .copied()
            .min()
            .expect("every tile has at least one PU");
        *self.tile_horizon = (*self.tile_horizon).min(self.clock.noc_cycle_for_pu(pu));
        Ok(())
    }
}

/// Detects cycles in the task-invocation graph.
fn has_cycle(n: u8, edges: &[(u8, u8)]) -> bool {
    let n = n as usize;
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        if (a as usize) < n && (b as usize) < n {
            adj[a as usize].push(b as usize);
        }
    }
    // 0 = unvisited, 1 = on stack, 2 = done
    let mut state = vec![0u8; n];
    fn dfs(v: usize, adj: &[Vec<usize>], state: &mut [u8]) -> bool {
        state[v] = 1;
        for &w in &adj[v] {
            if state[w] == 1 || (state[w] == 0 && dfs(w, adj, state)) {
                return true;
            }
        }
        state[v] = 2;
        false
    }
    (0..n).any(|v| state[v] == 0 && dfs(v, &adj, &mut state))
}

/// Assembles the final result (called by the driver).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish<A: Application>(
    cfg: &SystemConfig,
    app: &A,
    mut workers: Vec<Worker<A>>,
    networks: Vec<Network>,
    runtime_cycles: u64,
    host_started: Instant,
    threads: usize,
) -> SimResult {
    let mut counters = SimCounters::default();
    let mut column_activity = vec![0u64; cfg.width() as usize];
    let mut host_phase_ns = HostPhaseNs::default();
    for w in &workers {
        w.merge_counters(&mut counters);
        host_phase_ns.merge(&w.phase);
        for (local, t) in w.tiles.iter().enumerate() {
            let col = w.slice.global(local) % cfg.width();
            column_activity[col as usize] += t.counters.tasks_executed;
        }
    }
    let mut noc_latency = muchisim_noc::LatencyStats::default();
    for n in &networks {
        counters.noc.merge(&n.counters());
        noc_latency.merge(&n.latency());
    }
    // footprint telemetry, measured before the tile states are drained
    let host_state_bytes = workers.iter().map(|w| w.state_bytes(app)).sum::<u64>()
        + networks.iter().map(Network::state_bytes).sum::<u64>();
    let runtime = TimePs::ps(runtime_cycles as f64 * cfg.noc_clock.operating.period_ps());
    counters.runtime_cycles = runtime_cycles;
    counters.runtime_secs = runtime.as_secs();
    // every worker captured at the same boundaries and hit the same
    // downsampling points, so the sinks agree on the effective interval
    let effective_interval = workers
        .first()
        .map_or(cfg.frame_interval_cycles.max(1), |w| {
            w.frames.log().interval_cycles
        });
    let mut frames = FrameLog::new(effective_interval);
    for w in &workers {
        debug_assert_eq!(w.frames.log().interval_cycles, effective_interval);
        frames.merge(w.frames.log());
        w.frames.finish();
    }
    // gather per-tile states in global order for the result check
    let total = (cfg.width() * cfg.height()) as usize;
    let mut slots: Vec<Option<A::Tile>> = (0..total).map(|_| None).collect();
    for w in &mut workers {
        let slice = w.slice.clone();
        for (local, state) in w.states.drain(..).enumerate() {
            slots[slice.global(local) as usize] = Some(state);
        }
    }
    let states: Vec<A::Tile> = slots
        .into_iter()
        .map(|s| s.expect("every tile has a state"))
        .collect();
    let check_error = app.check(&states).err();
    SimResult {
        runtime_cycles,
        runtime,
        counters,
        frames,
        noc_latency,
        host_seconds: host_started.elapsed().as_secs_f64(),
        host_phase_ns,
        host_threads: threads,
        total_tiles: total as u64,
        host_state_bytes,
        check_error,
        column_activity,
        termination: "finished".into(),
    }
}

/// Rejects a snapshot whose identity header disagrees with the run being
/// resumed. The rule is strict equality — same configuration hash, same
/// application name, same grid, same kernel count — because a snapshot
/// only replays bit-identically against the exact deterministic inputs
/// it was taken under.
pub(crate) fn validate_snapshot<A: Application>(
    cfg: &SystemConfig,
    app: &A,
    snap: &crate::snapshot::SnapshotData,
) -> Result<(), SimError> {
    let fail = |why: String| Err(SimError::Snapshot(why));
    let want_hash = crate::snapshot::config_hash(cfg);
    if snap.config_hash != want_hash {
        return fail(format!(
            "snapshot was taken under a different configuration (hash {:#018x}, expected \
             {:#018x})",
            snap.config_hash, want_hash
        ));
    }
    if snap.app_name != app.name() {
        return fail(format!(
            "snapshot belongs to application `{}`, not `{}`",
            snap.app_name,
            app.name()
        ));
    }
    if (snap.width, snap.height) != (cfg.width(), cfg.height()) {
        return fail(format!(
            "snapshot grid {}x{} does not match the configured {}x{}",
            snap.width,
            snap.height,
            cfg.width(),
            cfg.height()
        ));
    }
    if snap.pus != cfg.pus_per_tile {
        return fail(format!(
            "snapshot has {} PUs per tile, configuration has {}",
            snap.pus, cfg.pus_per_tile
        ));
    }
    if snap.planes != cfg.noc.num_physical.max(1) {
        return fail(format!(
            "snapshot has {} NoC planes, configuration has {}",
            snap.planes,
            cfg.noc.num_physical.max(1)
        ));
    }
    if snap.task_types != app.task_types() {
        return fail(format!(
            "snapshot has {} task types, application declares {}",
            snap.task_types,
            app.task_types()
        ));
    }
    if snap.kernels != app.kernels() {
        return fail(format!(
            "snapshot has {} kernels, application declares {}",
            snap.kernels,
            app.kernels()
        ));
    }
    if snap.kernel >= snap.kernels {
        return fail(format!(
            "snapshot cursor is at kernel {} of {}",
            snap.kernel, snap.kernels
        ));
    }
    if snap.cycle < snap.base {
        return fail(format!(
            "snapshot cycle {} precedes its kernel base {}",
            snap.cycle, snap.base
        ));
    }
    Ok(())
}

/// Replays a validated snapshot's NoC state — queued packets, busy link
/// clocks, arbiter round-robin cursors, frame telemetry — into freshly
/// built networks. Occupancy, in-flight, and wake bookkeeping are
/// recomputed by [`Shard::restore_packet`] rather than deserialized.
pub(crate) fn restore_networks(
    networks: &mut [Network],
    snap: &crate::snapshot::SnapshotData,
) -> Result<(), SimError> {
    let fail = |why: String| Err(SimError::Snapshot(why));
    let total_tiles = snap.width as u64 * snap.height as u64;
    for (plane, net) in networks.iter_mut().enumerate() {
        let Some(rec) = snap.planes_state.get(plane) else {
            return fail(format!("snapshot is missing NoC plane {plane}"));
        };
        let (shared, shards) = net.split();
        // the plane-wide counters were captured merged; fold them back
        // into shard 0 so the final cross-shard merge reproduces them
        shards[0].restore_counters(&rec.counters, &rec.latency);
        for (tile, port, pkt) in &rec.packets {
            if u64::from(*tile) >= total_tiles {
                return fail(format!(
                    "plane {plane}: packet parked at tile {tile}, outside the grid"
                ));
            }
            let Some(&in_port) = InPort::ALL.get(*port as usize) else {
                return fail(format!(
                    "plane {plane}: packet at tile {tile} names input port {port}, which \
                     does not exist"
                ));
            };
            let shard = shared.shard_of_col[(*tile % snap.width) as usize];
            shards[shard as usize].restore_packet(shared, *tile, in_port, pkt.clone());
        }
        for &(tile, dir, until) in &rec.links {
            if u64::from(tile) >= total_tiles || dir as usize >= OutDir::ALL.len() {
                return fail(format!(
                    "plane {plane}: link record ({tile}, {dir}) is out of range"
                ));
            }
            let shard = shared.shard_of_col[(tile % snap.width) as usize];
            shards[shard as usize].restore_link(&shared.topo, tile, dir, until);
        }
        for &(tile, dir, val) in &rec.rr {
            if u64::from(tile) >= total_tiles || dir as usize >= OutDir::ALL.len() {
                return fail(format!(
                    "plane {plane}: arbiter record ({tile}, {dir}) is out of range"
                ));
            }
            let shard = shared.shard_of_col[(tile % snap.width) as usize];
            shards[shard as usize].restore_rr(&shared.topo, tile, dir, val);
        }
        for &(tile, val) in &rec.busy_frame {
            if u64::from(tile) >= total_tiles {
                return fail(format!(
                    "plane {plane}: busy-frame record for tile {tile} is out of range"
                ));
            }
            let shard = shared.shard_of_col[(tile % snap.width) as usize];
            shards[shard as usize].restore_busy_frame(&shared.topo, tile, val);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection() {
        assert!(!has_cycle(3, &[(0, 1), (1, 2)]));
        assert!(has_cycle(3, &[(0, 1), (1, 2), (2, 0)]));
        assert!(has_cycle(1, &[(0, 0)]));
        assert!(!has_cycle(0, &[]));
        assert!(!has_cycle(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
    }
}
