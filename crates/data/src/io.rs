//! Dataset file I/O: the original repo's `datasets/` folder workflow.
//!
//! Two formats:
//!
//! * **Edge-list text** (`src dst [weight]` per line, `#` comments) — the
//!   format SNAP distributes real-world graphs in, so users can drop in
//!   downloaded datasets.
//! * **Binary CSR** — a compact little-endian dump of the three CSR
//!   arrays for fast reload of generated datasets.

use crate::csr::Csr;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic header for the binary CSR format.
const MAGIC: &[u8; 8] = b"MUCHICSR";

/// Parses an edge-list text stream (`src dst [weight]`, `#` comments).
///
/// Vertex count is `max endpoint + 1` unless `num_vertices` is given.
///
/// # Errors
///
/// Returns an error for unreadable input or malformed lines.
pub fn read_edge_list<R: Read>(reader: R, num_vertices: Option<u32>) -> io::Result<Csr> {
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut max_v = 0u32;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u32> {
            s.and_then(|t| t.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge on line {}", lineno + 1),
                )
            })
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        let weight: f32 = it.next().and_then(|t| t.parse().ok()).unwrap_or(1.0);
        max_v = max_v.max(src).max(dst);
        edges.push((src, dst, weight));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() { 0 } else { max_v + 1 });
    Ok(Csr::from_edges(n, &edges))
}

/// Writes the graph as edge-list text.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_edge_list<W: Write>(graph: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# muchisim edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, d, wt) in graph.iter_edges() {
        writeln!(w, "{s} {d} {wt}")?;
    }
    w.flush()
}

/// Writes the graph in the binary CSR format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_csr_binary<W: Write>(graph: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&graph.num_vertices().to_le_bytes())?;
    w.write_all(&graph.num_edges().to_le_bytes())?;
    for &p in graph.row_ptr() {
        w.write_all(&p.to_le_bytes())?;
    }
    for &c in graph.col_idx() {
        w.write_all(&c.to_le_bytes())?;
    }
    for &v in graph.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a binary CSR dump.
///
/// # Errors
///
/// Returns an error for truncated input or a wrong magic header.
pub fn read_csr_binary<R: Read>(reader: R) -> io::Result<Csr> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a muchisim CSR file",
        ));
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4)?;
    let n = u32::from_le_bytes(b4);
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8);
    let mut row_ptr = Vec::with_capacity(n as usize + 1);
    for _ in 0..=n {
        r.read_exact(&mut b8)?;
        row_ptr.push(u64::from_le_bytes(b8));
    }
    let mut edges = Vec::with_capacity(m as usize);
    let mut cols = Vec::with_capacity(m as usize);
    for _ in 0..m {
        r.read_exact(&mut b4)?;
        cols.push(u32::from_le_bytes(b4));
    }
    for (k, &dst) in cols.iter().enumerate() {
        r.read_exact(&mut b4)?;
        let val = f32::from_le_bytes(b4);
        // reconstruct (src, dst, w): find the row of slot k
        let src = match row_ptr.binary_search(&(k as u64)) {
            Ok(mut i) => {
                // rows may be empty: take the last row starting at k
                while i + 1 < row_ptr.len() && row_ptr[i + 1] == k as u64 {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        edges.push((src as u32, dst, val));
    }
    Ok(Csr::from_edges(n, &edges))
}

/// Convenience: save a graph to `path` in binary CSR format.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn save(graph: &Csr, path: &Path) -> io::Result<()> {
    write_csr_binary(graph, std::fs::File::create(path)?)
}

/// Convenience: load a binary CSR file from `path`.
///
/// # Errors
///
/// Propagates file-system and format errors.
pub fn load(path: &Path) -> io::Result<Csr> {
    read_csr_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::RmatConfig;

    #[test]
    fn edge_list_round_trip() {
        let g = RmatConfig::scale(6).generate(3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], Some(g.num_vertices())).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_parses_comments_and_defaults() {
        let text = "# a comment\n0 1\n1 2 0.5\n\n2 0 2.5\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.weights(0), &[1.0]);
        assert_eq!(g.weights(1), &[0.5]);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes(), None).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = RmatConfig::scale(7).generate(9);
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        let back = read_csr_binary(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn binary_round_trip_with_empty_rows() {
        let g = Csr::from_edges(5, &[(0, 4, 1.5), (4, 0, 2.5)]);
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        assert_eq!(read_csr_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn binary_rejects_wrong_magic() {
        assert!(read_csr_binary(&b"NOTACSR0\0\0\0\0"[..]).is_err());
    }

    #[test]
    fn file_save_load() {
        let g = RmatConfig::scale(6).generate(1);
        let path = std::env::temp_dir().join("muchisim_io_test.csr");
        save(&g, &path).unwrap();
        assert_eq!(load(&path).unwrap(), g);
        let _ = std::fs::remove_file(&path);
    }
}
