//! Compressed Sparse Row storage (paper §III-G "Datasets").
//!
//! Graphs are viewed interchangeably as square sparse matrices: `V` rows
//! and columns, `E` non-zeros. Storage is exactly the paper's three-array
//! layout: non-zero values, column indices, and row pointers.

use serde::{Deserialize, Serialize};

/// A graph / square sparse matrix in CSR format.
///
/// Construct with [`Csr::from_edges`] or incrementally with
/// [`CsrBuilder`]. Vertex ids are dense `u32` in `0..num_vertices`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    num_vertices: u32,
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col_idx`/`values` for row `v`.
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR from an edge list `(src, dst, weight)`.
    ///
    /// Edges are counting-sorted by source; duplicates and self-loops are
    /// kept (as in the raw Graph500 generator output) unless removed by the
    /// caller beforehand.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: u32, edges: &[(u32, u32, f32)]) -> Self {
        let mut degree = vec![0u64; num_vertices as usize + 1];
        for &(src, dst, _) in edges {
            assert!(
                src < num_vertices && dst < num_vertices,
                "edge ({src}, {dst}) out of range for {num_vertices} vertices"
            );
            degree[src as usize + 1] += 1;
        }
        for i in 1..degree.len() {
            degree[i] += degree[i - 1];
        }
        let row_ptr = degree;
        let mut cursor: Vec<u64> = row_ptr[..num_vertices as usize].to_vec();
        let mut col_idx = vec![0u32; edges.len()];
        let mut values = vec![0f32; edges.len()];
        for &(src, dst, w) in edges {
            let at = cursor[src as usize] as usize;
            col_idx[at] = dst;
            values[at] = w;
            cursor[src as usize] += 1;
        }
        Csr {
            num_vertices,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of vertices (matrix dimension).
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges (non-zeros).
    pub fn num_edges(&self) -> u64 {
        self.col_idx.len() as u64
    }

    /// Out-neighbors (column indices) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let (lo, hi) = self.row_range(v);
        &self.col_idx[lo..hi]
    }

    /// Edge weights (non-zero values) of row `v`, parallel to
    /// [`Csr::neighbors`].
    pub fn weights(&self, v: u32) -> &[f32] {
        let (lo, hi) = self.row_range(v);
        &self.values[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        let (lo, hi) = self.row_range(v);
        (hi - lo) as u64
    }

    /// The raw row-pointer array (length `num_vertices + 1`).
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// The raw column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw values array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Memory footprint of the three CSR arrays in bytes, as laid out on
    /// the DUT (paper: 8-byte row pointers, 4-byte indices and FP32 values).
    pub fn footprint_bytes(&self) -> u64 {
        self.row_ptr.len() as u64 * 8 + self.col_idx.len() as u64 * (4 + 4)
    }

    /// The transposed matrix (in-edges become out-edges).
    pub fn transpose(&self) -> Csr {
        let mut edges = Vec::with_capacity(self.col_idx.len());
        for v in 0..self.num_vertices {
            let (lo, hi) = self.row_range(v);
            for k in lo..hi {
                edges.push((self.col_idx[k], v, self.values[k]));
            }
        }
        Csr::from_edges(self.num_vertices, &edges)
    }

    /// Returns the union of this graph and its transpose (symmetrized),
    /// dropping duplicate edges and self-loops; useful for connectivity
    /// kernels (WCC) on directed inputs.
    pub fn symmetrize(&self) -> Csr {
        let mut edges = Vec::with_capacity(self.col_idx.len() * 2);
        for v in 0..self.num_vertices {
            let (lo, hi) = self.row_range(v);
            for k in lo..hi {
                let u = self.col_idx[k];
                if u != v {
                    edges.push((v, u, self.values[k]));
                    edges.push((u, v, self.values[k]));
                }
            }
        }
        edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
        edges.dedup_by_key(|&mut (s, d, _)| (s, d));
        Csr::from_edges(self.num_vertices, &edges)
    }

    /// Iterates over all `(src, dst, weight)` triples in row order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.num_vertices).flat_map(move |v| {
            let (lo, hi) = self.row_range(v);
            (lo..hi).map(move |k| (v, self.col_idx[k], self.values[k]))
        })
    }

    fn row_range(&self, v: u32) -> (usize, usize) {
        assert!(v < self.num_vertices, "vertex {v} out of range");
        (
            self.row_ptr[v as usize] as usize,
            self.row_ptr[v as usize + 1] as usize,
        )
    }
}

/// Incremental CSR builder (C-BUILDER): push edges in any order, then
/// [`CsrBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    num_vertices: u32,
    edges: Vec<(u32, u32, f32)>,
}

impl CsrBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Adds a weighted directed edge.
    pub fn edge(&mut self, src: u32, dst: u32, weight: f32) -> &mut Self {
        self.edges.push((src, dst, weight));
        self
    }

    /// Adds an unweighted (weight 1.0) directed edge.
    pub fn arc(&mut self, src: u32, dst: u32) -> &mut Self {
        self.edge(src, dst, 1.0)
    }

    /// Number of edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Builds the CSR.
    ///
    /// # Panics
    ///
    /// Panics if any pushed endpoint is out of range.
    pub fn build(&self) -> Csr {
        Csr::from_edges(self.num_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(4, &[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)])
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights(0), &[1.0, 2.0]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn unsorted_input_grouped_by_row() {
        let g = Csr::from_edges(3, &[(2, 0, 1.0), (0, 1, 1.0), (2, 1, 1.0)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond().transpose();
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = diamond();
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn symmetrize_drops_self_loops_and_dups() {
        let g = Csr::from_edges(3, &[(0, 1, 1.0), (1, 0, 9.0), (1, 1, 5.0)]);
        let s = g.symmetrize();
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0]);
    }

    #[test]
    fn footprint_matches_layout() {
        let g = diamond();
        // row_ptr: 5 * 8, col_idx+values: 4 * 8
        assert_eq!(g.footprint_bytes(), 5 * 8 + 4 * 8);
    }

    #[test]
    fn builder_round_trip() {
        let mut b = CsrBuilder::new(4);
        assert!(b.is_empty());
        b.arc(0, 1).arc(0, 2).edge(1, 3, 3.0).edge(2, 3, 4.0);
        assert_eq!(b.len(), 4);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Csr::from_edges(2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn iter_edges_visits_all() {
        let g = diamond();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], (0, 1, 1.0));
        assert_eq!(edges[3], (2, 3, 4.0));
    }

    proptest! {
        #[test]
        fn prop_row_ptr_monotone_and_total(
            edges in proptest::collection::vec((0u32..50, 0u32..50), 0..200)
        ) {
            let e: Vec<_> = edges.iter().map(|&(s, d)| (s, d, 1.0f32)).collect();
            let g = Csr::from_edges(50, &e);
            prop_assert_eq!(g.num_edges(), e.len() as u64);
            for w in g.row_ptr().windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            prop_assert_eq!(*g.row_ptr().last().unwrap(), e.len() as u64);
            // every edge is findable in its row
            for (s, d, _) in &e {
                prop_assert!(g.neighbors(*s).contains(d));
            }
        }

        #[test]
        fn prop_degree_sums_to_edge_count(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..100)
        ) {
            let e: Vec<_> = edges.iter().map(|&(s, d)| (s, d, 1.0f32)).collect();
            let g = Csr::from_edges(20, &e);
            let total: u64 = (0..20).map(|v| g.degree(v)).sum();
            prop_assert_eq!(total, g.num_edges());
        }

        #[test]
        fn prop_symmetrize_is_symmetric(
            edges in proptest::collection::vec((0u32..15, 0u32..15), 0..60)
        ) {
            let e: Vec<_> = edges.iter().map(|&(s, d)| (s, d, 1.0f32)).collect();
            let s = Csr::from_edges(15, &e).symmetrize();
            for (a, b, _) in s.iter_edges() {
                prop_assert!(s.neighbors(b).contains(&a));
                prop_assert_ne!(a, b);
            }
        }
    }
}
