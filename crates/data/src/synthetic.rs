//! Synthetic stand-ins for the paper's SNAP real-world graphs.
//!
//! The paper evaluates Wikipedia (V = 4.2 M, E = 101 M), LiveJournal
//! (V = 5.3 M, E = 79 M), Amazon (V = 262 K, E = 1.2 M) and Twitter
//! (V = 81 K, E = 2.4 M). This environment is offline, so those downloads
//! are substituted (DESIGN.md substitution #2) with deterministic
//! generators matching each graph's *shape*: vertex/edge ratio and degree
//! skew, optionally scaled down by a power of two. RMAT quadrant
//! probabilities are tuned per profile so the degree tail matches the
//! qualitative class (social graphs heavier-tailed than co-purchase
//! graphs).

use crate::csr::Csr;
use crate::rmat::RmatConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named real-world-graph profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphProfile {
    /// Wikipedia links: moderately skewed, high edge factor (~24).
    Wikipedia,
    /// LiveJournal social network: skewed, edge factor ~15.
    LiveJournal,
    /// Amazon co-purchase: near-uniform degrees, edge factor ~4.6.
    Amazon,
    /// Twitter ego-network sample: very heavy-tailed, edge factor ~30.
    Twitter,
}

impl GraphProfile {
    /// All profiles, in the paper's order.
    pub const ALL: [GraphProfile; 4] = [
        GraphProfile::Wikipedia,
        GraphProfile::LiveJournal,
        GraphProfile::Amazon,
        GraphProfile::Twitter,
    ];

    /// Published vertex count of the real graph.
    pub fn real_vertices(self) -> u64 {
        match self {
            GraphProfile::Wikipedia => 4_200_000,
            GraphProfile::LiveJournal => 5_300_000,
            GraphProfile::Amazon => 262_000,
            GraphProfile::Twitter => 81_000,
        }
    }

    /// Published edge count of the real graph.
    pub fn real_edges(self) -> u64 {
        match self {
            GraphProfile::Wikipedia => 101_000_000,
            GraphProfile::LiveJournal => 79_000_000,
            GraphProfile::Amazon => 1_200_000,
            GraphProfile::Twitter => 2_400_000,
        }
    }

    /// Generates a synthetic analogue scaled down by `2^downscale` in
    /// vertex count, keeping the edges-per-vertex ratio.
    ///
    /// `downscale = 0` reproduces the published size (memory permitting).
    pub fn generate(self, downscale: u32, seed: u64) -> Csr {
        let vertices = (self.real_vertices() >> downscale).max(64);
        let scale = (64 - (vertices - 1).leading_zeros() as u64) as u32; // ceil log2
        let edge_factor =
            ((self.real_edges() as f64 / self.real_vertices() as f64).round() as u32).max(1);
        let (a, b, c) = match self {
            // heavier a => heavier tail
            GraphProfile::Twitter => (0.65, 0.15, 0.15),
            GraphProfile::LiveJournal => (0.57, 0.19, 0.19),
            GraphProfile::Wikipedia => (0.55, 0.20, 0.20),
            GraphProfile::Amazon => (0.45, 0.22, 0.22),
        };
        RmatConfig {
            scale,
            edge_factor,
            a,
            b,
            c,
            weighted: true,
            permute: true,
        }
        .generate(seed ^ self as u64)
    }
}

impl fmt::Display for GraphProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GraphProfile::Wikipedia => "wikipedia",
            GraphProfile::LiveJournal => "livejournal",
            GraphProfile::Amazon => "amazon",
            GraphProfile::Twitter => "twitter",
        };
        f.write_str(s)
    }
}

/// A uniformly random directed graph: every edge endpoint drawn uniformly.
///
/// Useful as a *non*-skewed baseline when studying endpoint contention.
pub fn uniform_random(num_vertices: u32, num_edges: u64, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32, f32)> = (0..num_edges)
        .map(|_| {
            (
                rng.gen_range(0..num_vertices),
                rng.gen_range(0..num_vertices),
                1.0 - rng.gen::<f32>().min(0.999_999),
            )
        })
        .collect();
    Csr::from_edges(num_vertices, &edges)
}

/// A 2D grid graph (each vertex connected to its 4 neighbors), the
/// best-case near-neighbor communication pattern.
pub fn grid_2d(width: u32, height: u32) -> Csr {
    let n = width * height;
    let mut edges = Vec::with_capacity(n as usize * 4);
    for y in 0..height {
        for x in 0..width {
            let v = y * width + x;
            if x + 1 < width {
                edges.push((v, v + 1, 1.0));
                edges.push((v + 1, v, 1.0));
            }
            if y + 1 < height {
                edges.push((v, v + width, 1.0));
                edges.push((v + width, v, 1.0));
            }
        }
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_down_keeping_edge_factor() {
        let g = GraphProfile::Amazon.generate(4, 1);
        // 262k >> 4 = 16375 -> ceil log2 = 14 -> 16384 vertices
        assert_eq!(g.num_vertices(), 16384);
        // edge factor ~ 4.6 -> 5
        assert_eq!(g.num_edges(), 5 * 16384);
    }

    #[test]
    fn twitter_heavier_tail_than_amazon() {
        let tw = GraphProfile::Twitter.generate(3, 7);
        let am = GraphProfile::Amazon.generate(5, 7); // similar vertex count
        let max_deg = |g: &Csr| (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        let mean_deg = |g: &Csr| g.num_edges() as f64 / g.num_vertices() as f64;
        let tw_skew = max_deg(&tw) as f64 / mean_deg(&tw);
        let am_skew = max_deg(&am) as f64 / mean_deg(&am);
        assert!(
            tw_skew > am_skew,
            "twitter skew {tw_skew:.1} should exceed amazon skew {am_skew:.1}"
        );
    }

    #[test]
    fn all_profiles_generate() {
        for p in GraphProfile::ALL {
            let g = p.generate(8, 0);
            assert!(g.num_vertices() >= 64, "{p}");
            assert!(g.num_edges() > 0, "{p}");
        }
    }

    #[test]
    fn uniform_random_shape() {
        let g = uniform_random(100, 500, 3);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn uniform_random_deterministic() {
        assert_eq!(uniform_random(50, 100, 9), uniform_random(50, 100, 9));
    }

    #[test]
    fn grid_graph_degrees() {
        let g = grid_2d(4, 3);
        assert_eq!(g.num_vertices(), 12);
        // corner has degree 2, interior 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4); // (1,1)
                                    // grid edges are symmetric
        for (a, b, _) in g.iter_edges() {
            assert!(g.neighbors(b).contains(&a));
        }
    }

    #[test]
    fn display_names_lowercase() {
        assert_eq!(GraphProfile::Wikipedia.to_string(), "wikipedia");
        assert_eq!(GraphProfile::Twitter.to_string(), "twitter");
    }
}
