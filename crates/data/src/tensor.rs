//! Dense 3D tensors for the FFT benchmark (paper §III-G, §IV-A).
//!
//! The WSE validation parallelizes the FFT of an `n³` complex tensor
//! across `n²` processors: each PU owns one *pencil* of `n` elements.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A complex number stored as two `f64` parts.
///
/// Kept minimal: only the operations the FFT kernels need.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^(i·theta)`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place radix-2 decimation-in-time FFT of a power-of-two pencil.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// A dense `n × n × n` complex tensor stored contiguously (z fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    n: usize,
    data: Vec<Complex>,
}

impl Tensor3 {
    /// Creates a zero tensor of side `n`.
    pub fn zeros(n: usize) -> Self {
        Tensor3 {
            n,
            data: vec![Complex::ZERO; n * n * n],
        }
    }

    /// Creates a deterministic random tensor of side `n`.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..n * n * n)
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        Tensor3 { n, data }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element at `(x, y, z)`.
    pub fn get(&self, x: usize, y: usize, z: usize) -> Complex {
        self.data[(x * self.n + y) * self.n + z]
    }

    /// Sets the element at `(x, y, z)`.
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: Complex) {
        self.data[(x * self.n + y) * self.n + z] = v;
    }

    /// The pencil (fixed `x`, `y`, varying `z`) as a mutable slice.
    pub fn pencil_mut(&mut self, x: usize, y: usize) -> &mut [Complex] {
        let start = (x * self.n + y) * self.n;
        &mut self.data[start..start + self.n]
    }

    /// The pencil as an immutable slice.
    pub fn pencil(&self, x: usize, y: usize) -> &[Complex] {
        let start = (x * self.n + y) * self.n;
        &self.data[start..start + self.n]
    }

    /// Full 3D FFT computed directly on the host (the reference result the
    /// simulated distributed FFT is checked against).
    pub fn fft3_reference(&self) -> Tensor3 {
        let n = self.n;
        let mut t = self.clone();
        // FFT along z
        for x in 0..n {
            for y in 0..n {
                fft_in_place(t.pencil_mut(x, y));
            }
        }
        // FFT along y
        let mut buf = vec![Complex::ZERO; n];
        for x in 0..n {
            for z in 0..n {
                for (y, b) in buf.iter_mut().enumerate() {
                    *b = t.get(x, y, z);
                }
                fft_in_place(&mut buf);
                for (y, &b) in buf.iter().enumerate() {
                    t.set(x, y, z, b);
                }
            }
        }
        // FFT along x
        for y in 0..n {
            for z in 0..n {
                for (x, b) in buf.iter_mut().enumerate() {
                    *b = t.get(x, y, z);
                }
                fft_in_place(&mut buf);
                for (x, &b) in buf.iter().enumerate() {
                    t.set(x, y, z, b);
                }
            }
        }
        t
    }

    /// Frobenius-norm distance to `other`, for result checking.
    pub fn distance(&self, other: &Tensor3) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm_sq())
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::ZERO; 8];
        d[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut d);
        for c in d {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut d = vec![Complex::new(1.0, 0.0); 8];
        fft_in_place(&mut d);
        assert!((d[0].re - 8.0).abs() < 1e-12);
        for c in &d[1..] {
            assert!(c.norm_sq() < 1e-20);
        }
    }

    #[test]
    fn fft_parseval_energy_preserved() {
        let mut rngd: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let time_energy: f64 = rngd.iter().map(|c| c.norm_sq()).sum();
        fft_in_place(&mut rngd);
        let freq_energy: f64 = rngd.iter().map(|c| c.norm_sq()).sum();
        assert!((freq_energy - 16.0 * time_energy).abs() / freq_energy < 1e-10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut d = vec![Complex::ZERO; 6];
        fft_in_place(&mut d);
    }

    #[test]
    fn tensor_indexing() {
        let mut t = Tensor3::zeros(4);
        t.set(1, 2, 3, Complex::new(5.0, 0.0));
        assert_eq!(t.get(1, 2, 3).re, 5.0);
        assert_eq!(t.pencil(1, 2)[3].re, 5.0);
    }

    #[test]
    fn tensor_random_deterministic() {
        assert_eq!(Tensor3::random(4, 9), Tensor3::random(4, 9));
        assert_ne!(Tensor3::random(4, 9), Tensor3::random(4, 10));
    }

    #[test]
    fn fft3_reference_impulse() {
        let mut t = Tensor3::zeros(4);
        t.set(0, 0, 0, Complex::new(1.0, 0.0));
        let f = t.fft3_reference();
        // impulse transforms to all-ones
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    let c = f.get(x, y, z);
                    assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn distance_zero_for_identical() {
        let t = Tensor3::random(4, 3);
        assert_eq!(t.distance(&t), 0.0);
    }
}
