//! # muchisim-data
//!
//! Dataset generation and storage for the MuchiSim benchmark suite
//! (paper §III-G).
//!
//! The paper's suite ships six RMAT (Kronecker) graph scales — the
//! Graph500 standard — plus four SNAP real-world graphs, all stored in
//! Compressed Sparse Row (CSR) format without any partitioning: three
//! arrays (non-zero values, column indices, row pointers). This crate
//! reproduces that: a seedable [`rmat`] generator, parameterized
//! [`synthetic`] stand-ins for the real-world graphs (this reproduction
//! runs offline, so the SNAP downloads are substituted — see DESIGN.md),
//! the [`Csr`] container, and the equal-chunk [`Partition`] used to scatter
//! each dataset array across tiles (paper §III-B "Address space and
//! dataset layout").
//!
//! # Example
//!
//! ```
//! use muchisim_data::{rmat::RmatConfig, Partition};
//!
//! let graph = RmatConfig::scale(8).generate(42);   // 256 vertices
//! assert_eq!(graph.num_vertices(), 256);
//! let part = Partition::new(graph.num_vertices() as u64, 16);
//! let owner = part.owner_of(200);                  // tile owning vertex 200
//! assert!(owner < 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod csr;
pub mod io;
mod partition;
pub mod rmat;
pub mod synthetic;
pub mod tensor;

pub use csr::{Csr, CsrBuilder};
pub use partition::Partition;
