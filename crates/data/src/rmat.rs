//! RMAT (recursive-matrix / Kronecker) graph generation.
//!
//! The paper's datasets are the Graph500-standard RMAT graphs, named after
//! their scale: RMAT-`s` has `2^s` vertices and `16·2^s` edges. The
//! partition probabilities follow the Graph500 reference
//! (`a = 0.57, b = 0.19, c = 0.19, d = 0.05`).

use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for an RMAT generator run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex (Graph500 default: 16).
    pub edge_factor: u32,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Whether to emit uniformly random edge weights in `(0, 1]` (for
    /// SSSP/SPMV); otherwise all weights are 1.0.
    pub weighted: bool,
    /// Apply the Graph500 random vertex-label permutation, which spreads
    /// the high-degree hub vertices (biased towards low recursive-matrix
    /// coordinates) uniformly over the id space.
    pub permute: bool,
}

impl RmatConfig {
    /// A Graph500-parameter configuration at `scale` (so `RMAT-22` is
    /// `RmatConfig::scale(22)`).
    pub fn scale(scale: u32) -> Self {
        RmatConfig {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            weighted: true,
            permute: true,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> u32 {
        1u32 << self.scale
    }

    /// Number of generated edges (`edge_factor · 2^scale`).
    pub fn num_edges(&self) -> u64 {
        self.edge_factor as u64 * self.num_vertices() as u64
    }

    /// Generates the graph deterministically from `seed`.
    ///
    /// Duplicate edges and self-loops are kept, as in the raw Graph500
    /// kernel-0 output; callers wanting simple graphs can post-process.
    pub fn generate(&self, seed: u64) -> Csr {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = self.num_vertices();
        let perm: Vec<u32> = if self.permute {
            let mut p: Vec<u32> = (0..n).collect();
            // Fisher-Yates with the same seeded rng
            for i in (1..n as usize).rev() {
                let j = rng.gen_range(0..=i);
                p.swap(i, j);
            }
            p
        } else {
            (0..n).collect()
        };
        let mut edges = Vec::with_capacity(self.num_edges() as usize);
        for _ in 0..self.num_edges() {
            let (src, dst) = self.sample_edge(&mut rng);
            let (src, dst) = (perm[src as usize], perm[dst as usize]);
            let w = if self.weighted {
                // uniform in (0, 1]: avoid zero-weight edges for SSSP
                1.0 - rng.gen::<f32>().min(0.999_999)
            } else {
                1.0
            };
            debug_assert!(src < n && dst < n);
            edges.push((src, dst, w));
        }
        Csr::from_edges(n, &edges)
    }

    /// Samples one edge by recursive quadrant descent with per-level
    /// probability noise (the standard +-10 % smoothing that prevents
    /// degenerate staircase structure).
    fn sample_edge(&self, rng: &mut SmallRng) -> (u32, u32) {
        let mut src = 0u32;
        let mut dst = 0u32;
        for level in 0..self.scale {
            let noise = 1.0 + 0.1 * (rng.gen::<f64>() - 0.5);
            let a = self.a * noise;
            let b = self.b * noise;
            let c = self.c * noise;
            let total = a + b + c + (1.0 - self.a - self.b - self.c) * noise;
            let r = rng.gen::<f64>() * total;
            let bit = 1u32 << (self.scale - 1 - level);
            if r < a {
                // top-left: neither bit set
            } else if r < a + b {
                dst |= bit;
            } else if r < a + b + c {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        (src, dst)
    }
}

/// Convenience: generate the paper's named dataset `RMAT-{scale}` with the
/// default seed used across the benchmark harness.
pub fn rmat(scale: u32) -> Csr {
    RmatConfig::scale(scale).generate(0x6D75_6368_6953_696D) // "muchiSim"
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shape_matches_graph500_convention() {
        let cfg = RmatConfig::scale(8);
        assert_eq!(cfg.num_vertices(), 256);
        assert_eq!(cfg.num_edges(), 4096);
        let g = cfg.generate(1);
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 4096);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig::scale(6);
        assert_eq!(cfg.generate(7), cfg.generate(7));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RmatConfig::scale(6);
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // RMAT graphs are heavy-tailed: the max degree should far exceed
        // the mean degree (16).
        let g = RmatConfig::scale(10).generate(3);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg > 64,
            "expected heavy tail, max degree was {max_deg}"
        );
    }

    #[test]
    fn weights_in_unit_interval() {
        let g = RmatConfig::scale(7).generate(9);
        for (_, _, w) in g.iter_edges() {
            assert!(w > 0.0 && w <= 1.0, "weight {w} outside (0, 1]");
        }
    }

    #[test]
    fn unweighted_mode_gives_unit_weights() {
        let mut cfg = RmatConfig::scale(6);
        cfg.weighted = false;
        let g = cfg.generate(4);
        assert!(g.iter_edges().all(|(_, _, w)| w == 1.0));
    }

    #[test]
    fn named_helper_matches_config() {
        let g = rmat(6);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 1024);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_all_endpoints_in_range(scale in 4u32..9, seed in 0u64..1000) {
            let g = RmatConfig::scale(scale).generate(seed);
            let n = g.num_vertices();
            for (s, d, _) in g.iter_edges() {
                prop_assert!(s < n && d < n);
            }
        }
    }
}
