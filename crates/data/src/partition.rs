//! Equal-chunk scattering of dataset arrays across tiles.
//!
//! Paper §III-B: "the dataset is scattered so that each tile has an equal
//! chunk of each data array", and the global address space is contiguous
//! with each tile's PLM owning one chunk. A [`Partition`] maps array
//! indices to owning tiles and back.

use serde::{Deserialize, Serialize};

/// An equal-chunk partition of `len` elements over `parts` owners.
///
/// The first `len % parts` owners hold one extra element, so chunk sizes
/// differ by at most one and the mapping is gap-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    len: u64,
    parts: u32,
}

impl Partition {
    /// Creates a partition of `len` elements over `parts` owners.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn new(len: u64, parts: u32) -> Self {
        assert!(parts > 0, "partition needs at least one part");
        Partition { len, parts }
    }

    /// Total elements partitioned.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of owners.
    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// The owner of element `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn owner_of(&self, index: u64) -> u32 {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let base = self.len / self.parts as u64;
        let extra = self.len % self.parts as u64;
        // first `extra` parts have (base + 1) elements
        let boundary = extra * (base + 1);
        if index < boundary {
            (index / (base + 1)) as u32
        } else {
            // base == 0 means len < parts and every element landed in the
            // boundary region, so this division cannot be reached then
            let off = (index - boundary)
                .checked_div(base)
                .expect("index below len implies boundary covers it when base is 0");
            (extra + off) as u32
        }
    }

    /// The half-open element range `[start, end)` owned by `part`.
    ///
    /// # Panics
    ///
    /// Panics if `part >= parts`.
    pub fn range_of(&self, part: u32) -> std::ops::Range<u64> {
        assert!(part < self.parts, "part {part} out of range {}", self.parts);
        let base = self.len / self.parts as u64;
        let extra = self.len % self.parts as u64;
        let p = part as u64;
        let start = if p <= extra {
            p * (base + 1)
        } else {
            extra * (base + 1) + (p - extra) * base
        };
        let size = if p < extra { base + 1 } else { base };
        start..(start + size)
    }

    /// Number of elements owned by `part`.
    pub fn chunk_len(&self, part: u32) -> u64 {
        let r = self.range_of(part);
        r.end - r.start
    }

    /// The local offset of `index` within its owner's chunk.
    pub fn local_offset(&self, index: u64) -> u64 {
        index - self.range_of(self.owner_of(index)).start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_split() {
        let p = Partition::new(100, 4);
        assert_eq!(p.range_of(0), 0..25);
        assert_eq!(p.range_of(3), 75..100);
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(24), 0);
        assert_eq!(p.owner_of(25), 1);
        assert_eq!(p.owner_of(99), 3);
    }

    #[test]
    fn uneven_split_front_loaded() {
        let p = Partition::new(10, 4); // sizes 3,3,2,2
        assert_eq!(p.chunk_len(0), 3);
        assert_eq!(p.chunk_len(1), 3);
        assert_eq!(p.chunk_len(2), 2);
        assert_eq!(p.chunk_len(3), 2);
        assert_eq!(p.owner_of(5), 1);
        assert_eq!(p.owner_of(6), 2);
    }

    #[test]
    fn more_parts_than_elements() {
        let p = Partition::new(3, 8);
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(2), 2);
        assert_eq!(p.chunk_len(3), 0);
        assert_eq!(p.range_of(7), 3..3);
    }

    #[test]
    fn local_offset() {
        let p = Partition::new(100, 4);
        assert_eq!(p.local_offset(25), 0);
        assert_eq!(p.local_offset(30), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_of_out_of_range_panics() {
        Partition::new(10, 2).owner_of(10);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::new(0, 4);
        assert!(p.is_empty());
        assert_eq!(p.chunk_len(0), 0);
    }

    proptest! {
        #[test]
        fn prop_ranges_tile_the_space(len in 0u64..10_000, parts in 1u32..64) {
            let p = Partition::new(len, parts);
            let mut cursor = 0;
            for part in 0..parts {
                let r = p.range_of(part);
                prop_assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            prop_assert_eq!(cursor, len);
        }

        #[test]
        fn prop_owner_consistent_with_range(len in 1u64..10_000, parts in 1u32..64, idx_frac in 0.0f64..1.0) {
            let p = Partition::new(len, parts);
            let idx = ((len as f64 * idx_frac) as u64).min(len - 1);
            let owner = p.owner_of(idx);
            prop_assert!(p.range_of(owner).contains(&idx));
        }

        #[test]
        fn prop_chunks_differ_by_at_most_one(len in 0u64..10_000, parts in 1u32..64) {
            let p = Partition::new(len, parts);
            let sizes: Vec<u64> = (0..parts).map(|i| p.chunk_len(i)).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
