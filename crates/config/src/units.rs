//! Light-weight unit newtypes used throughout the simulator.
//!
//! Cycle counts stay plain `u64` in hot paths; these types are used at
//! configuration and reporting boundaries where unit confusion is the real
//! hazard (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A clock frequency.
///
/// Stored in hertz. Construct with [`Frequency::ghz`] or [`Frequency::mhz`].
///
/// ```
/// use muchisim_config::Frequency;
/// let f = Frequency::ghz(2.0);
/// assert_eq!(f.period_ps(), 500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite and positive.
    pub fn ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Frequency(ghz * 1e9)
    }

    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and positive.
    pub fn mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        Frequency(mhz * 1e6)
    }

    /// The frequency in hertz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// The frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// The clock period in picoseconds.
    pub fn period_ps(self) -> f64 {
        1e12 / self.0
    }

    /// The clock period in integer femtoseconds (rounded, never zero).
    ///
    /// The engine's hot loop compares PU and NoC clock instants in this
    /// integer domain so that dispatch eligibility and time-leap horizons
    /// are computed with the exact same arithmetic and can never disagree
    /// by a floating-point ulp.
    pub fn period_fs(self) -> u64 {
        (self.period_ps() * 1e3).round().max(1.0) as u64
    }

    /// Converts a duration in picoseconds to a whole number of cycles of
    /// this clock, rounding up (a partial cycle still occupies the cycle).
    pub fn cycles_for_ps(self, ps: f64) -> u64 {
        (ps / self.period_ps()).ceil() as u64
    }

    /// Converts a number of cycles of this clock to picoseconds.
    pub fn ps_for_cycles(self, cycles: u64) -> f64 {
        cycles as f64 * self.period_ps()
    }
}

impl Default for Frequency {
    /// 1 GHz, the paper's default for all components.
    fn default() -> Self {
        Frequency::ghz(1.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} GHz", self.as_ghz())
        } else {
            write!(f, "{:.3} MHz", self.0 / 1e6)
        }
    }
}

/// A time duration in picoseconds.
///
/// The simulator keeps all latency parameters in picoseconds internally so
/// that PU and NoC clock domains with arbitrary frequency ratios can be
/// composed exactly (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TimePs(f64);

impl TimePs {
    /// Zero duration.
    pub const ZERO: TimePs = TimePs(0.0);

    /// Creates a duration from picoseconds.
    pub fn ps(ps: f64) -> Self {
        TimePs(ps)
    }

    /// Creates a duration from nanoseconds.
    pub fn ns(ns: f64) -> Self {
        TimePs(ns * 1e3)
    }

    /// Creates a duration from microseconds.
    pub fn us(us: f64) -> Self {
        TimePs(us * 1e6)
    }

    /// The duration in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0
    }

    /// The duration in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 / 1e3
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e12
    }
}

impl Add for TimePs {
    type Output = TimePs;
    fn add(self, rhs: TimePs) -> TimePs {
        TimePs(self.0 + rhs.0)
    }
}

impl AddAssign for TimePs {
    fn add_assign(&mut self, rhs: TimePs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimePs {
    type Output = TimePs;
    fn sub(self, rhs: TimePs) -> TimePs {
        TimePs(self.0 - rhs.0)
    }
}

impl Mul<f64> for TimePs {
    type Output = TimePs;
    fn mul(self, rhs: f64) -> TimePs {
        TimePs(self.0 * rhs)
    }
}

impl Sum for TimePs {
    fn sum<I: Iterator<Item = TimePs>>(iter: I) -> TimePs {
        TimePs(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for TimePs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} ms", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} us", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} ns", self.0 / 1e3)
        } else {
            write!(f, "{:.1} ps", self.0)
        }
    }
}

/// An energy amount in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    pub fn pj(pj: f64) -> Self {
        Energy(pj)
    }

    /// The energy in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// The energy in joules.
    pub fn as_joules(self) -> f64 {
        self.0 / 1e12
    }

    /// Average power in watts over `time`.
    ///
    /// Returns 0 for a zero-length interval rather than dividing by zero.
    pub fn power_over(self, time: TimePs) -> f64 {
        if time.as_secs() == 0.0 {
            0.0
        } else {
            self.as_joules() / time.as_secs()
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.3} J", self.0 / 1e12)
        } else if self.0 >= 1e9 {
            write!(f, "{:.3} mJ", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} uJ", self.0 / 1e6)
        } else {
            write!(f, "{:.1} pJ", self.0)
        }
    }
}

/// A silicon area in square millimeters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Area(f64);

impl Area {
    /// Zero area.
    pub const ZERO: Area = Area(0.0);

    /// Creates an area from square millimeters.
    pub fn mm2(mm2: f64) -> Self {
        Area(mm2)
    }

    /// The area in square millimeters.
    pub fn as_mm2(self) -> f64 {
        self.0
    }
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Area {
    type Output = Area;
    fn mul(self, rhs: f64) -> Area {
        Area(self.0 * rhs)
    }
}

impl Div<f64> for Area {
    type Output = Area;
    fn div(self, rhs: f64) -> Area {
        Area(self.0 / rhs)
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        Area(iter.map(|a| a.0).sum())
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mm^2", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_period_round_trip() {
        let f = Frequency::ghz(1.0);
        assert_eq!(f.period_ps(), 1000.0);
        assert_eq!(f.cycles_for_ps(1000.0), 1);
        assert_eq!(f.cycles_for_ps(1001.0), 2);
        assert_eq!(f.ps_for_cycles(3), 3000.0);
    }

    #[test]
    fn frequency_period_fs_integer_domain() {
        assert_eq!(Frequency::ghz(1.0).period_fs(), 1_000_000);
        assert_eq!(Frequency::ghz(2.0).period_fs(), 500_000);
        // non-integer-ps period rounds to the nearest femtosecond
        assert_eq!(Frequency::ghz(1.5).period_fs(), 666_667);
    }

    #[test]
    fn frequency_mhz_constructor() {
        let f = Frequency::mhz(500.0);
        assert_eq!(f.period_ps(), 2000.0);
        assert_eq!(f.as_ghz(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::ghz(0.0);
    }

    #[test]
    fn cycles_for_partial_period_round_up() {
        // 1.5 GHz clock: period 666.67ps; 1ns = 1.5 cycles -> 2
        let f = Frequency::ghz(1.5);
        assert_eq!(f.cycles_for_ps(1000.0), 2);
    }

    #[test]
    fn time_conversions() {
        let t = TimePs::ns(4.0);
        assert_eq!(t.as_ps(), 4000.0);
        assert_eq!(t.as_ns(), 4.0);
        assert!((TimePs::us(1.0).as_secs() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn time_arithmetic() {
        let t = TimePs::ns(1.0) + TimePs::ns(2.0);
        assert_eq!(t.as_ns(), 3.0);
        assert_eq!((t - TimePs::ns(1.0)).as_ns(), 2.0);
        assert_eq!((t * 2.0).as_ns(), 6.0);
        let sum: TimePs = [TimePs::ns(1.0), TimePs::ns(2.0)].into_iter().sum();
        assert_eq!(sum.as_ns(), 3.0);
    }

    #[test]
    fn energy_power() {
        // 1 J over 1 s = 1 W
        let e = Energy::pj(1e12);
        assert_eq!(e.power_over(TimePs::ps(1e12)), 1.0);
        assert_eq!(Energy::ZERO.power_over(TimePs::ZERO), 0.0);
    }

    #[test]
    fn energy_display_scales() {
        assert_eq!(format!("{}", Energy::pj(5.0)), "5.0 pJ");
        assert_eq!(format!("{}", Energy::pj(5e6)), "5.000 uJ");
        assert_eq!(format!("{}", Energy::pj(5e9)), "5.000 mJ");
    }

    #[test]
    fn time_display_scales() {
        assert_eq!(format!("{}", TimePs::ps(10.0)), "10.0 ps");
        assert_eq!(format!("{}", TimePs::ns(10.0)), "10.000 ns");
        assert_eq!(format!("{}", TimePs::us(10.0)), "10.000 us");
    }

    #[test]
    fn area_arithmetic() {
        let a = Area::mm2(2.0) + Area::mm2(3.0);
        assert_eq!(a.as_mm2(), 5.0);
        assert_eq!((a * 2.0).as_mm2(), 10.0);
        assert_eq!((a / 2.0).as_mm2(), 2.5);
    }

    #[test]
    fn frequency_display() {
        assert_eq!(format!("{}", Frequency::ghz(1.0)), "1.000 GHz");
        assert_eq!(format!("{}", Frequency::mhz(250.0)), "250.000 MHz");
    }
}
