//! Synthetic-traffic parameters.
//!
//! NoC simulators are traditionally characterized with synthetic traffic
//! patterns (BookSim-style): every tile injects packets at a configurable
//! *offered load* toward destinations chosen by a spatial pattern, and
//! the latency-versus-load curve locates the network's saturation
//! throughput. [`TrafficParams`] is the declarative half of that
//! capability: plain serializable data living inside
//! [`SystemConfig`](crate::SystemConfig), so every knob (`traffic.rate`,
//! `traffic.pattern`, `traffic.seed`, ...) is sweepable through the same
//! string-keyed overrides as any other DUT parameter. The generator
//! itself lives in the `muchisim-traffic` crate.

use serde::{Deserialize, Serialize};

/// A synthetic spatial traffic pattern (destination choice per packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Destination uniformly random over all other tiles.
    #[default]
    UniformRandom,
    /// Coordinate complement: `(x, y) → (w-1-x, h-1-y)`, the longest
    /// deterministic paths (equals bit-complement on power-of-two grids).
    BitComplement,
    /// Generalized matrix transpose on the tile index:
    /// `y·w + x → x·h + y` (a bijection on any `w × h` grid).
    Transpose,
    /// Perfect shuffle (bit rotation) on power-of-two tile counts; a
    /// seed-derived pseudorandom permutation otherwise.
    Shuffle,
    /// Each tile sends to its east neighbor (wrapping), the minimal-hop
    /// extreme.
    NearestNeighbor,
    /// A fraction of the traffic converges on a few hotspot tiles; the
    /// rest is uniform random.
    Hotspot,
}

impl TrafficPattern {
    /// All patterns, in a stable order.
    pub const ALL: [TrafficPattern; 6] = [
        TrafficPattern::UniformRandom,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Shuffle,
        TrafficPattern::NearestNeighbor,
        TrafficPattern::Hotspot,
    ];

    /// Short lowercase label (`"uniform"`, `"transpose"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::NearestNeighbor => "neighbor",
            TrafficPattern::Hotspot => "hotspot",
        }
    }

    /// Parses a pattern from its label or serde variant name,
    /// case-insensitively. The inverse of [`TrafficPattern::label`].
    pub fn from_label(name: &str) -> Option<TrafficPattern> {
        TrafficPattern::ALL.into_iter().find(|p| {
            p.label().eq_ignore_ascii_case(name) || p.variant_name().eq_ignore_ascii_case(name)
        })
    }

    fn variant_name(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "UniformRandom",
            TrafficPattern::BitComplement => "BitComplement",
            TrafficPattern::Transpose => "Transpose",
            TrafficPattern::Shuffle => "Shuffle",
            TrafficPattern::NearestNeighbor => "NearestNeighbor",
            TrafficPattern::Hotspot => "Hotspot",
        }
    }
}

/// Synthetic traffic-generator configuration.
///
/// Offered load is expressed in *packets per tile per NoC cycle*
/// (Bernoulli injection process per tile per cycle, the standard open-loop
/// model); payload sizes are drawn uniformly from
/// `[payload_words_min, payload_words_max]` 32-bit words. Generation is
/// deterministic: each tile derives its own RNG stream from `seed`, so
/// results are bit-identical across host-thread counts and repeat runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficParams {
    /// Spatial pattern.
    pub pattern: TrafficPattern,
    /// Offered load in packets per tile per NoC cycle (0 < rate ≤ 1).
    pub rate: f64,
    /// Injection-window length in NoC cycles (the run then drains).
    pub cycles: u64,
    /// Minimum payload size in 32-bit words.
    pub payload_words_min: u32,
    /// Maximum payload size in 32-bit words.
    pub payload_words_max: u32,
    /// Number of hotspot destination tiles ([`TrafficPattern::Hotspot`]).
    pub hotspot_targets: u32,
    /// Fraction of packets aimed at the hotspot set (0 ≤ f ≤ 1).
    pub hotspot_fraction: f64,
    /// Master RNG seed; per-tile streams are derived from it.
    pub seed: u64,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            cycles: 2_000,
            payload_words_min: 2,
            payload_words_max: 2,
            hotspot_targets: 4,
            hotspot_fraction: 0.5,
            seed: 0xD1CE,
        }
    }
}

impl TrafficParams {
    /// Validates the traffic parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Traffic`](crate::ConfigError::Traffic)
    /// naming the first invalid setting.
    pub fn validate(&self) -> Result<(), crate::ConfigError> {
        let bad = |why| Err(crate::ConfigError::Traffic { why });
        if !self.rate.is_finite() || self.rate < 0.0 || self.rate > 1.0 {
            return bad("rate must be a finite value in [0, 1]");
        }
        if self.cycles == 0 {
            return bad("injection window must span at least one cycle");
        }
        if self.payload_words_min > self.payload_words_max {
            return bad("payload_words_min exceeds payload_words_max");
        }
        if self.hotspot_targets == 0 {
            return bad("hotspot pattern needs at least one target tile");
        }
        if !self.hotspot_fraction.is_finite() || !(0.0..=1.0).contains(&self.hotspot_fraction) {
            return bad("hotspot_fraction must be a finite value in [0, 1]");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(TrafficParams::default().validate().is_ok());
    }

    #[test]
    fn labels_round_trip_case_insensitively() {
        for p in TrafficPattern::ALL {
            assert_eq!(TrafficPattern::from_label(p.label()), Some(p));
            assert_eq!(
                TrafficPattern::from_label(&p.label().to_uppercase()),
                Some(p)
            );
        }
        // serde variant names parse too (`--set traffic.pattern=Transpose`
        // and `--pattern transpose` must agree)
        assert_eq!(
            TrafficPattern::from_label("UniformRandom"),
            Some(TrafficPattern::UniformRandom)
        );
        assert_eq!(TrafficPattern::from_label("nope"), None);
    }

    #[test]
    fn invalid_params_are_rejected_with_reasons() {
        let check = |mutate: fn(&mut TrafficParams), needle: &str| {
            let mut p = TrafficParams::default();
            mutate(&mut p);
            let err = p.validate().expect_err(needle).to_string();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        };
        check(|p| p.rate = -0.1, "rate");
        check(|p| p.rate = 1.5, "rate");
        check(|p| p.rate = f64::NAN, "rate");
        check(|p| p.cycles = 0, "window");
        check(|p| p.payload_words_min = 9, "payload_words_min");
        check(|p| p.hotspot_targets = 0, "hotspot");
        check(|p| p.hotspot_fraction = 2.0, "hotspot_fraction");
    }

    #[test]
    fn serde_round_trip() {
        let p = TrafficParams {
            pattern: TrafficPattern::Hotspot,
            rate: 0.125,
            ..TrafficParams::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: TrafficParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
