//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// An error produced while validating a [`SystemConfig`].
///
/// [`SystemConfig`]: crate::SystemConfig
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A hierarchy level has a zero-sized extent.
    EmptyExtent {
        /// The offending level ("chiplet", "package", "node", "cluster").
        level: &'static str,
    },
    /// The NoC width is zero or not a multiple of 8 bits.
    InvalidNocWidth {
        /// The rejected width in bits.
        bits: u32,
    },
    /// A tile must contain at least one PU.
    NoPus,
    /// SRAM per tile must be non-zero.
    NoSram,
    /// The Ruche factor must be at least 2 and divide the chiplet dimension.
    InvalidRucheFactor {
        /// The rejected factor.
        factor: u32,
    },
    /// Queue capacities must be non-zero.
    EmptyQueue {
        /// Which queue ("input", "channel").
        queue: &'static str,
    },
    /// Operating frequency exceeds the peak design frequency.
    OperatingAbovePeak {
        /// Which clock domain ("pu", "noc").
        domain: &'static str,
    },
    /// No physical NoC configured.
    NoNocs,
    /// The DRAM configuration requests zero channels.
    NoDramChannels,
    /// The inter-node link multiplexing factor must be non-zero.
    ZeroLinkMux,
    /// The synthetic-traffic parameters are invalid.
    Traffic {
        /// What is wrong with them.
        why: &'static str,
    },
    /// The checkpoint options are inconsistent (missing path, zero
    /// cadence, or combined with an option snapshots cannot capture).
    Checkpoint {
        /// What is wrong with them.
        why: &'static str,
    },
    /// The telemetry/ward parameters are invalid.
    Telemetry {
        /// What is wrong with them.
        why: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyExtent { level } => {
                write!(f, "hierarchy level `{level}` has a zero-sized extent")
            }
            ConfigError::InvalidNocWidth { bits } => {
                write!(
                    f,
                    "NoC width of {bits} bits is not a positive multiple of 8"
                )
            }
            ConfigError::NoPus => write!(f, "a tile must contain at least one PU"),
            ConfigError::NoSram => write!(f, "SRAM per tile must be non-zero"),
            ConfigError::InvalidRucheFactor { factor } => {
                write!(
                    f,
                    "ruche factor {factor} must be >= 2 and divide the chiplet width"
                )
            }
            ConfigError::EmptyQueue { queue } => {
                write!(f, "{queue} queue capacity must be non-zero")
            }
            ConfigError::OperatingAbovePeak { domain } => {
                write!(
                    f,
                    "{domain} operating frequency exceeds its peak design frequency"
                )
            }
            ConfigError::NoNocs => write!(f, "at least one physical NoC is required"),
            ConfigError::NoDramChannels => {
                write!(f, "DRAM configuration requests zero channels")
            }
            ConfigError::ZeroLinkMux => {
                write!(f, "inter-node link multiplexing factor must be non-zero")
            }
            ConfigError::Traffic { why } => write!(f, "invalid traffic parameters: {why}"),
            ConfigError::Checkpoint { why } => {
                write!(f, "invalid checkpoint configuration: {why}")
            }
            ConfigError::Telemetry { why } => {
                write!(f, "invalid telemetry configuration: {why}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        let msgs = [
            ConfigError::EmptyExtent { level: "chiplet" }.to_string(),
            ConfigError::InvalidNocWidth { bits: 3 }.to_string(),
            ConfigError::NoPus.to_string(),
            ConfigError::NoSram.to_string(),
            ConfigError::InvalidRucheFactor { factor: 1 }.to_string(),
            ConfigError::EmptyQueue { queue: "input" }.to_string(),
            ConfigError::OperatingAbovePeak { domain: "pu" }.to_string(),
            ConfigError::NoNocs.to_string(),
            ConfigError::NoDramChannels.to_string(),
            ConfigError::ZeroLinkMux.to_string(),
            ConfigError::Traffic { why: "rate" }.to_string(),
            ConfigError::Checkpoint { why: "path" }.to_string(),
            ConfigError::Telemetry { why: "cadence" }.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m}");
            let acronym = m.starts_with("SRAM") || m.starts_with("NoC") || m.starts_with("DRAM");
            assert!(m.chars().next().unwrap().is_lowercase() || acronym, "{m}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
    }
}
