//! Named configuration presets: the original repo's `configs/` folder.
//!
//! Each preset is a starting point the builder can refine; JSON
//! round-tripping ([`SystemConfig`] is fully serde-enabled) covers the
//! file-based workflow.
//!
//! All presets leave the time-leaping cycle driver at its default
//! (enabled); [`lockstep`] flips any preset back to the one-cycle-at-a-time
//! driver for host-performance ablations — results are bit-identical
//! either way.

use crate::system::{DramConfig, NocTopology, SystemConfig, SystemConfigBuilder};

/// Reconfigures `preset` to use the lockstep (non-leaping) cycle driver,
/// the ablation counterpart of the default time-leaping driver.
pub fn lockstep(mut preset: SystemConfigBuilder) -> SystemConfigBuilder {
    preset.time_leap(false);
    preset
}

/// A Cerebras-WSE-like wafer: one monolithic die of `side × side` tiles,
/// 48 KiB of SRAM per tile (scratchpad), a 32-bit 2D mesh (paper §IV-A).
pub fn wse_like(side: u32) -> SystemConfigBuilder {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .sram_kib_per_tile(48)
        .noc_width_bits(32)
        .noc_topology(NocTopology::Mesh)
        .scratchpad();
    b
}

/// A Dalorex-style data-local design: distributed SRAM as main memory,
/// 64-bit torus, task-based parallelization-friendly queue sizes.
pub fn dalorex_like(side: u32) -> SystemConfigBuilder {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .sram_kib_per_tile(256)
        .noc_width_bits(64)
        .noc_topology(NocTopology::FoldedTorus)
        .queues(64, 32)
        .scratchpad();
    b
}

/// The paper's Fig. 5 baseline: 32×32-tile chiplets, each with one
/// 8-channel HBM device (128 tiles/channel), 64 KiB PLM used as a cache.
pub fn hbm_chiplet_baseline() -> SystemConfigBuilder {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(32, 32)
        .sram_kib_per_tile(64)
        .noc_topology(NocTopology::FoldedTorus)
        .dram(DramConfig::default());
    b
}

/// A four-chiplet MCM package (2×2 chiplets of `side × side` tiles) on an
/// organic substrate — the multi-chip integration granularity study.
pub fn mcm_quad(side: u32) -> SystemConfigBuilder {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .package_chiplets(2, 2)
        .noc_topology(NocTopology::Mesh);
    b
}

/// Serializes a configuration to the JSON config-file format.
pub fn to_json(cfg: &SystemConfig) -> String {
    serde_json::to_string_pretty(cfg).expect("SystemConfig serializes")
}

/// Loads a configuration from JSON and validates it.
///
/// Config files written before the `time_leap` or `active_list` knobs
/// existed lack those fields; they default to `true` here (the vendored
/// serde shim has no per-field default mechanism).
///
/// # Errors
///
/// Returns a message for malformed JSON or invalid configurations.
pub fn from_json(json: &str) -> Result<SystemConfig, String> {
    let mut value: serde::value::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    if let serde::value::Value::Object(obj) = &mut value {
        if obj.get("time_leap").is_none() {
            obj.insert("time_leap".to_string(), serde::value::Value::Bool(true));
        }
        if obj.get("active_list").is_none() {
            obj.insert("active_list".to_string(), serde::value::Value::Bool(true));
        }
    }
    let cfg: SystemConfig = serde::Deserialize::from_value(&value).map_err(|e| e.to_string())?;
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_valid_configs() {
        assert_eq!(wse_like(32).build().unwrap().total_tiles(), 1024);
        assert!(dalorex_like(16).build().is_ok());
        let hbm = hbm_chiplet_baseline().build().unwrap();
        assert_eq!(hbm.tiles_per_dram_channel(), Some(128));
        let quad = mcm_quad(16).build().unwrap();
        assert_eq!(quad.hierarchy.total_chiplets(), 4);
    }

    #[test]
    fn presets_default_to_time_leaping_driver() {
        assert!(wse_like(8).build().unwrap().time_leap);
        assert!(hbm_chiplet_baseline().build().unwrap().time_leap);
        let off = lockstep(dalorex_like(8)).build().unwrap();
        assert!(!off.time_leap);
    }

    #[test]
    fn presets_are_refinable() {
        let cfg = wse_like(16).pus_per_tile(2).build().unwrap();
        assert_eq!(cfg.pus_per_tile, 2);
        assert_eq!(cfg.sram_kib_per_tile, 48);
    }

    #[test]
    fn json_config_file_round_trip() {
        let cfg = hbm_chiplet_baseline().build().unwrap();
        let json = to_json(&cfg);
        let back = from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn json_without_time_leap_field_defaults_on() {
        // a config file written before the knob existed still loads
        let cfg = wse_like(8).build().unwrap();
        let json = to_json(&cfg).replace("\"time_leap\": true,", "");
        assert!(!json.contains("time_leap"), "field not stripped: {json}");
        let back = from_json(&json).unwrap();
        assert!(back.time_leap);
        assert_eq!(back.sram_kib_per_tile, cfg.sram_kib_per_tile);
    }

    #[test]
    fn json_without_active_list_field_defaults_on() {
        let cfg = wse_like(8).build().unwrap();
        let json = to_json(&cfg).replace("\"active_list\": true,", "");
        assert!(!json.contains("active_list"), "field not stripped: {json}");
        let back = from_json(&json).unwrap();
        assert!(back.active_list);
        let off = {
            let mut b = wse_like(8);
            b.active_list(false);
            b.build().unwrap()
        };
        assert_eq!(from_json(&to_json(&off)).unwrap(), off);
    }

    #[test]
    fn json_rejects_invalid_config() {
        let mut cfg = wse_like(8).build().unwrap();
        cfg.noc.width_bits = 13; // invalid
        assert!(from_json(&to_json(&cfg)).is_err());
        assert!(from_json("not json").is_err());
    }
}
