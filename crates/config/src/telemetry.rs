//! Telemetry sampling and ward (stop-condition) parameters.
//!
//! Observability is configuration, not code: [`TelemetryParams`] declares
//! *when* the running simulation snapshots a [`MetricsSample`] (every
//! `sample_every` simulated cycles, folded into the time-leap horizon so a
//! leap never skips a sample boundary) and *where* the stream goes (JSONL
//! and/or CSV files, an optional stdout progress line). On top of the
//! stream sit **wards**: declarative stop-conditions evaluated by the
//! barrier leader on the merged sample (`max_cycles`, `converged`,
//! `diverged`, and a stall watchdog) that terminate a run with a
//! structured diagnostic instead of letting a wedged configuration spin
//! forever. Everything here is plain serializable data inside
//! [`SystemConfig`](crate::SystemConfig), so every knob
//! (`telemetry.sample_every`, `telemetry.wards.stall_cycles`, ...) is
//! sweepable through the same string-keyed overrides as any DUT parameter.
//!
//! `MetricsSample` and the subscribers live in the `muchisim-telemetry`
//! crate; the sampling hook itself lives in the `muchisim-core` driver.

use serde::{Deserialize, Serialize};

/// The metric a [`ConvergedWard`] watches for settling.
///
/// All choices are *deterministic* fields of the merged sample (derived
/// from simulated state, never from host wall-clock), so a ward decision
/// is bit-identical across host-thread counts and leap/active-list modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WardMetric {
    /// Tasks executed per sample interval (delta).
    #[default]
    Tasks,
    /// Packets injected per sample interval (delta).
    Injected,
    /// Pending work items (queued messages + in-flight packets).
    Pending,
    /// Mean NoC packet latency over the sample interval.
    LatencyMean,
}

impl WardMetric {
    /// All metrics, in a stable order.
    pub const ALL: [WardMetric; 4] = [
        WardMetric::Tasks,
        WardMetric::Injected,
        WardMetric::Pending,
        WardMetric::LatencyMean,
    ];

    /// Short lowercase label (`"tasks"`, `"latency_mean"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            WardMetric::Tasks => "tasks",
            WardMetric::Injected => "injected",
            WardMetric::Pending => "pending",
            WardMetric::LatencyMean => "latency_mean",
        }
    }

    /// Parses a metric from its label, case-insensitively. The inverse of
    /// [`WardMetric::label`].
    pub fn from_label(name: &str) -> Option<WardMetric> {
        WardMetric::ALL
            .into_iter()
            .find(|m| m.label().eq_ignore_ascii_case(name))
    }
}

/// A convergence ward: stop once a metric's sample-to-sample delta stays
/// at or below `epsilon` for `window` consecutive samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergedWard {
    /// The watched metric.
    pub metric: WardMetric,
    /// Maximum absolute sample-to-sample change still counted as settled.
    pub epsilon: f64,
    /// Number of consecutive settled samples required to trip.
    pub window: u32,
}

impl Default for ConvergedWard {
    fn default() -> Self {
        ConvergedWard {
            metric: WardMetric::Tasks,
            epsilon: 0.0,
            window: 3,
        }
    }
}

/// Declarative stop-conditions evaluated on the live metric stream.
///
/// Each ward is optional and independent; the first one to trip ends the
/// run with a `SimError::Ward` carrying a per-tile/per-queue diagnostic
/// report. All predicates read only deterministic sample fields, so a
/// ward trip happens at the same simulated cycle on every host.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct WardParams {
    /// Hard cycle ceiling: trip once the sampled cycle reaches this value.
    pub max_cycles: Option<u64>,
    /// Stall watchdog: trip when no task executes and no flit moves for
    /// this many consecutive simulated cycles (rounded up to sample
    /// boundaries). Set it above the longest legitimate idle span of the
    /// workload — e.g. a barrier-heavy phase waiting on one straggler.
    pub stall_cycles: Option<u64>,
    /// Convergence predicate (metric delta below epsilon for a window).
    pub converged: Option<ConvergedWard>,
    /// Divergence predicate: trip when pending work grows past
    /// `factor ×` its first-sample baseline (queue blow-up).
    pub diverged_queue_factor: Option<f64>,
    /// Divergence predicate: trip when interval mean latency grows past
    /// `factor ×` its first-nonzero baseline (latency knee).
    pub diverged_latency_factor: Option<f64>,
}

impl WardParams {
    /// True when no ward is configured.
    pub fn is_empty(&self) -> bool {
        self.max_cycles.is_none()
            && self.stall_cycles.is_none()
            && self.converged.is_none()
            && self.diverged_queue_factor.is_none()
            && self.diverged_latency_factor.is_none()
    }
}

/// Telemetry stream + ward configuration.
///
/// Default-constructed telemetry is fully off (`sample_every: None`): the
/// driver takes no samples, allocates no channel, and the hot loop is
/// untouched. Sampling is observation, never perturbation — enabling it
/// changes no simulated outcome, only host-side work at sample
/// boundaries.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct TelemetryParams {
    /// Sample cadence in simulated cycles (`None` disables telemetry).
    pub sample_every: Option<u64>,
    /// JSONL metrics stream destination (one schema-versioned object per
    /// sample).
    pub metrics_path: Option<String>,
    /// CSV metrics stream destination (header + one row per sample).
    pub metrics_csv: Option<String>,
    /// Print a live progress line (`cycle / sim-cyc/s / active% / ETA`)
    /// to stdout.
    pub progress: bool,
    /// Declarative stop-conditions evaluated on each merged sample.
    pub wards: WardParams,
    /// On a ward trip, write a post-mortem snapshot to the configured
    /// `checkpoint_path` before terminating (requires one).
    pub snapshot_on_trip: bool,
}

impl TelemetryParams {
    /// True when any stream, ward, or progress output is requested.
    pub fn wants_sampling(&self) -> bool {
        self.metrics_path.is_some()
            || self.metrics_csv.is_some()
            || self.progress
            || !self.wards.is_empty()
    }

    /// True when the driver must take samples at all.
    pub fn enabled(&self) -> bool {
        self.sample_every.is_some() && self.wants_sampling()
    }

    /// Validates the telemetry parameters in isolation (cross-field rules
    /// against checkpointing live in `SystemConfig::validate`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Telemetry`](crate::ConfigError::Telemetry)
    /// naming the first invalid setting.
    pub fn validate(&self) -> Result<(), crate::ConfigError> {
        let bad = |why| Err(crate::ConfigError::Telemetry { why });
        if self.sample_every == Some(0) {
            return bad("sample_every must be at least one cycle");
        }
        if self.sample_every.is_none() && self.wants_sampling() {
            return bad("metrics streams, wards and progress require sample_every");
        }
        let w = &self.wards;
        if w.max_cycles == Some(0) {
            return bad("max_cycles ward must allow at least one cycle");
        }
        if w.stall_cycles == Some(0) {
            return bad("stall watchdog needs a non-zero cycle span");
        }
        if let Some(c) = &w.converged {
            if !c.epsilon.is_finite() || c.epsilon < 0.0 {
                return bad("converged epsilon must be finite and non-negative");
            }
            if c.window == 0 {
                return bad("converged window must cover at least one sample");
            }
        }
        for (factor, which) in [
            (w.diverged_queue_factor, "diverged_queue_factor"),
            (w.diverged_latency_factor, "diverged_latency_factor"),
        ] {
            if let Some(fac) = factor {
                if !fac.is_finite() || fac <= 1.0 {
                    return match which {
                        "diverged_queue_factor" => {
                            bad("diverged_queue_factor must be a finite value above 1")
                        }
                        _ => bad("diverged_latency_factor must be a finite value above 1"),
                    };
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_and_valid() {
        let p = TelemetryParams::default();
        assert!(p.validate().is_ok());
        assert!(!p.enabled());
        assert!(!p.wants_sampling());
        assert!(p.wards.is_empty());
    }

    #[test]
    fn metric_labels_round_trip_case_insensitively() {
        for m in WardMetric::ALL {
            assert_eq!(WardMetric::from_label(m.label()), Some(m));
            assert_eq!(WardMetric::from_label(&m.label().to_uppercase()), Some(m));
        }
        assert_eq!(WardMetric::from_label("nope"), None);
    }

    #[test]
    fn invalid_params_are_rejected_with_reasons() {
        let check = |mutate: fn(&mut TelemetryParams), needle: &str| {
            let mut p = TelemetryParams {
                sample_every: Some(1_000),
                ..Default::default()
            };
            mutate(&mut p);
            let err = p.validate().expect_err(needle).to_string();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        };
        check(|p| p.sample_every = Some(0), "sample_every");
        check(
            |p| {
                p.sample_every = None;
                p.progress = true;
            },
            "sample_every",
        );
        check(|p| p.wards.max_cycles = Some(0), "max_cycles");
        check(|p| p.wards.stall_cycles = Some(0), "stall");
        check(
            |p| {
                p.wards.converged = Some(ConvergedWard {
                    epsilon: -1.0,
                    ..ConvergedWard::default()
                })
            },
            "epsilon",
        );
        check(
            |p| {
                p.wards.converged = Some(ConvergedWard {
                    window: 0,
                    ..ConvergedWard::default()
                })
            },
            "window",
        );
        check(
            |p| p.wards.diverged_queue_factor = Some(1.0),
            "diverged_queue",
        );
        check(
            |p| p.wards.diverged_latency_factor = Some(f64::NAN),
            "diverged_latency",
        );
    }

    #[test]
    fn enabled_needs_cadence_and_a_consumer() {
        let mut p = TelemetryParams {
            sample_every: Some(500),
            ..TelemetryParams::default()
        };
        // cadence alone samples nothing: there is nobody to tell
        assert!(!p.enabled());
        p.wards.stall_cycles = Some(10_000);
        assert!(p.enabled());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn serde_round_trip_and_old_configs_default() {
        let p = TelemetryParams {
            sample_every: Some(1_024),
            metrics_path: Some("m.jsonl".into()),
            wards: WardParams {
                stall_cycles: Some(50_000),
                converged: Some(ConvergedWard::default()),
                ..WardParams::default()
            },
            ..TelemetryParams::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: TelemetryParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        // a pre-telemetry config (empty object) deserializes to defaults
        let old: TelemetryParams = serde_json::from_str("{}").unwrap();
        assert_eq!(old, TelemetryParams::default());
    }
}
