//! Model parameters with the default values of Table I of the paper.
//!
//! All parameters are plain data and serializable, so a simulation's
//! counters file can be *post-processed* with different parameter values
//! without re-running the simulation (paper §III-D/§III-E).

use serde::{Deserialize, Serialize};

/// SRAM latency / energy / density parameters (7 nm at 1 GHz, Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramParams {
    /// Storage density in MB per mm² (Table I: 3.5 MB/mm²).
    pub density_mb_per_mm2: f64,
    /// Read/write access latency in nanoseconds (Table I: 0.82 ns).
    pub access_latency_ns: f64,
    /// Read energy in pJ per bit (Table I: 0.18 pJ/bit).
    pub read_energy_pj_per_bit: f64,
    /// Write energy in pJ per bit (Table I: 0.28 pJ/bit).
    pub write_energy_pj_per_bit: f64,
    /// Cache tag read + compare energy in pJ per access (Table I: 6.3 pJ).
    pub tag_read_compare_energy_pj: f64,
    /// Static (leakage) power per active bank, in watts per MB.
    ///
    /// Only active banks leak (paper §III-D). Repo-default value.
    pub leakage_w_per_mb: f64,
    /// Bank size in KiB used by the bank-scaling model (repo default).
    pub bank_kib: u32,
    /// Multiplexer-tree energy growth per capacity doubling (paper: +50 %).
    pub mux_growth_per_doubling: f64,
    /// Extra access latency in ns added at each quadrupling step beyond
    /// 512 KiB (paper: +1 ns).
    pub latency_step_ns: f64,
    /// Capacity in KiB beyond which the latency steps start (paper: 512 KiB).
    pub latency_step_threshold_kib: u32,
}

impl Default for SramParams {
    fn default() -> Self {
        SramParams {
            density_mb_per_mm2: 3.5,
            access_latency_ns: 0.82,
            read_energy_pj_per_bit: 0.18,
            write_energy_pj_per_bit: 0.28,
            tag_read_compare_energy_pj: 6.3,
            leakage_w_per_mb: 0.05,
            bank_kib: 64,
            mux_growth_per_doubling: 0.5,
            latency_step_ns: 1.0,
            latency_step_threshold_kib: 512,
        }
    }
}

/// HBM2E DRAM device parameters (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmParams {
    /// Device capacity in GB (Table I: 8 GB 4-high device).
    pub device_capacity_gb: f64,
    /// Device footprint in mm² (Table I: 110 mm², ~75 MB/mm²).
    pub device_area_mm2: f64,
    /// Channels per device (Table I: 8).
    pub channels_per_device: u32,
    /// Bandwidth per channel in GB/s (Table I: 64 GB/s).
    pub channel_bandwidth_gbps: f64,
    /// Memory-controller-to-HBM round-trip latency in ns (Table I: 50 ns).
    pub ctrl_latency_ns: f64,
    /// Access energy in pJ per bit (Table I: 3.7 pJ/bit).
    pub access_energy_pj_per_bit: f64,
    /// Bitline refresh period in ms (Table I: 32 ms).
    pub refresh_period_ms: f64,
    /// Refresh energy in pJ per bit (Table I: 0.22 pJ/bit).
    pub refresh_energy_pj_per_bit: f64,
    /// Width of a DRAM bitline / cacheline in bits (paper default: 512).
    pub cacheline_bits: u32,
}

impl Default for HbmParams {
    fn default() -> Self {
        HbmParams {
            device_capacity_gb: 8.0,
            device_area_mm2: 110.0,
            channels_per_device: 8,
            channel_bandwidth_gbps: 64.0,
            ctrl_latency_ns: 50.0,
            access_energy_pj_per_bit: 3.7,
            refresh_period_ms: 32.0,
            refresh_energy_pj_per_bit: 0.22,
            cacheline_bits: 512,
        }
    }
}

/// Inter-chiplet PHY densities (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhyParams {
    /// MCM (organic substrate) PHY areal density, Gbit/s per mm².
    pub mcm_areal_gbps_per_mm2: f64,
    /// MCM PHY beachfront (edge) density, Gbit/s per mm.
    pub mcm_beachfront_gbps_per_mm: f64,
    /// Silicon-interposer PHY areal density, Gbit/s per mm².
    pub si_areal_gbps_per_mm2: f64,
    /// Silicon-interposer PHY beachfront density, Gbit/s per mm.
    pub si_beachfront_gbps_per_mm: f64,
}

impl Default for PhyParams {
    fn default() -> Self {
        PhyParams {
            mcm_areal_gbps_per_mm2: 690.0,
            mcm_beachfront_gbps_per_mm: 880.0,
            si_areal_gbps_per_mm2: 1070.0,
            si_beachfront_gbps_per_mm: 1780.0,
        }
    }
}

/// Wire and link latency / energy parameters (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Die-to-die link latency in ns for reaches < 25 mm (Table I: 4 ns).
    pub d2d_latency_ns: f64,
    /// Die-to-die link energy in pJ/bit (Table I: 0.55 pJ/bit).
    pub d2d_energy_pj_per_bit: f64,
    /// NoC wire latency in ps per mm (Table I: 50 ps/mm).
    pub noc_wire_latency_ps_per_mm: f64,
    /// NoC wire energy in pJ per bit per mm (Table I: 0.15 pJ/bit/mm).
    pub noc_wire_energy_pj_per_bit_mm: f64,
    /// NoC router traversal latency in ps (Table I: 500 ps).
    pub noc_router_latency_ps: f64,
    /// NoC router traversal energy in pJ per bit (Table I: 0.1 pJ/bit).
    pub noc_router_energy_pj_per_bit: f64,
    /// I/O die RX+TX latency in ns for off-package hops (Table I: 20 ns).
    pub io_die_latency_ns: f64,
    /// Off-package link energy in pJ/bit for up to 80 mm (Table I: 1.17).
    pub off_package_energy_pj_per_bit: f64,
    /// Inter-node (board-to-board) link latency in ns (repo default).
    pub inter_node_latency_ns: f64,
    /// Inter-node link energy in pJ/bit (repo default; optical/long reach).
    pub inter_node_energy_pj_per_bit: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            d2d_latency_ns: 4.0,
            d2d_energy_pj_per_bit: 0.55,
            noc_wire_latency_ps_per_mm: 50.0,
            noc_wire_energy_pj_per_bit_mm: 0.15,
            noc_router_latency_ps: 500.0,
            noc_router_energy_pj_per_bit: 0.1,
            io_die_latency_ns: 20.0,
            off_package_energy_pj_per_bit: 1.17,
            inter_node_latency_ns: 200.0,
            inter_node_energy_pj_per_bit: 4.0,
        }
    }
}

/// Processing-unit performance / energy / area parameters.
///
/// The paper relies on user instrumentation for compute cycle counts; these
/// parameters cover the *energy and area* side of the PU model. Defaults
/// follow the repository's simple in-order 7 nm core and are calibrated so
/// that a WSE-like configuration reproduces the §IV-A area validation
/// (simulated area ≈ 1.088 × the real 46,225 mm² wafer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PuParams {
    /// PU core area in mm² at 1 GHz peak frequency.
    pub area_mm2: f64,
    /// Task-scheduling-unit area in mm² per tile.
    pub tsu_area_mm2: f64,
    /// Base router area in mm² (excluding per-bit datapath).
    pub router_base_area_mm2: f64,
    /// Router datapath area in mm² per bit of NoC width.
    pub router_area_mm2_per_bit: f64,
    /// Energy per integer ALU operation in pJ.
    pub int_op_energy_pj: f64,
    /// Energy per floating-point operation in pJ.
    pub fp_op_energy_pj: f64,
    /// Energy per control-flow instruction in pJ.
    pub control_op_energy_pj: f64,
    /// Energy for the TSU to dispatch one task in pJ.
    pub task_dispatch_energy_pj: f64,
    /// PU static (leakage) power in watts per PU at nominal voltage.
    pub leakage_w: f64,
    /// Fraction by which area grows per unit relative increase in peak
    /// frequency (paper default: 0.5, i.e. +50 % area for +100 % frequency).
    pub area_growth_per_freq: f64,
}

impl Default for PuParams {
    fn default() -> Self {
        PuParams {
            area_mm2: 0.032,
            tsu_area_mm2: 0.0018,
            router_base_area_mm2: 0.003,
            router_area_mm2_per_bit: 0.00028,
            int_op_energy_pj: 2.0,
            fp_op_energy_pj: 5.0,
            control_op_energy_pj: 1.5,
            task_dispatch_energy_pj: 3.0,
            leakage_w: 0.001,
            area_growth_per_freq: 0.5,
        }
    }
}

/// Fabrication and packaging cost parameters (paper §III-E).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of a processed 300 mm wafer in USD (paper: $6,047 at 7 nm).
    pub wafer_cost_usd: f64,
    /// Wafer diameter in mm (paper: 300 mm).
    pub wafer_diameter_mm: f64,
    /// Defect density in defects per mm² (paper: 0.07).
    pub defect_density_per_mm2: f64,
    /// Scribe-line width in mm (paper: 0.2 mm).
    pub scribe_mm: f64,
    /// Wafer edge loss in mm (paper: 4 mm).
    pub edge_loss_mm: f64,
    /// 65 nm silicon interposer + bonding cost as a fraction of the compute
    /// die price (paper: 0.20).
    pub si_interposer_fraction: f64,
    /// Organic substrate cost as a fraction of an equal-sized compute die
    /// (paper: 0.10).
    pub organic_substrate_fraction: f64,
    /// Bonding overhead fraction on top of the substrate (paper: 0.05).
    pub bonding_overhead_fraction: f64,
    /// HBM cost in USD per GB (paper's educated guess: $7.5/GB).
    pub hbm_usd_per_gb: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            wafer_cost_usd: 6047.0,
            wafer_diameter_mm: 300.0,
            defect_density_per_mm2: 0.07,
            scribe_mm: 0.2,
            edge_loss_mm: 4.0,
            si_interposer_fraction: 0.20,
            organic_substrate_fraction: 0.10,
            bonding_overhead_fraction: 0.05,
            hbm_usd_per_gb: 7.5,
        }
    }
}

/// The ridge-regression voltage-scaling model of paper §III-D.
///
/// `V = base + freq_coeff · f_GHz + node_coeff · node_nm`, fitted to shmoo
/// plots of 5, 7 and 12 nm chips. Dynamic power scales with `V²·f`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageModel {
    /// Constant term in volts (paper: 0.06).
    pub base: f64,
    /// Coefficient on operating frequency in V per GHz (paper: 0.13).
    pub freq_coeff: f64,
    /// Coefficient on transistor node in V per nm (paper: 0.06).
    pub node_coeff: f64,
}

impl Default for VoltageModel {
    fn default() -> Self {
        VoltageModel {
            base: 0.06,
            freq_coeff: 0.13,
            node_coeff: 0.06,
        }
    }
}

impl VoltageModel {
    /// Supply voltage predicted for `freq_ghz` at `node_nm`.
    ///
    /// ```
    /// use muchisim_config::VoltageModel;
    /// let v = VoltageModel::default().voltage(1.0, 7);
    /// assert!((v - 0.61).abs() < 1e-9); // 0.06 + 0.13*1 + 0.06*7
    /// ```
    pub fn voltage(&self, freq_ghz: f64, node_nm: u32) -> f64 {
        self.base + self.freq_coeff * freq_ghz + self.node_coeff * node_nm as f64
    }

    /// Dynamic energy scaling factor for running at `op_ghz` relative to
    /// energy parameters characterized at `ref_ghz` (both at `node_nm`).
    ///
    /// Energy per event scales with `V²`; this returns
    /// `(V(op)/V(ref))²`, used to re-scale all per-event energies when the
    /// operating frequency differs from the 1 GHz characterization point.
    pub fn energy_scale(&self, op_ghz: f64, ref_ghz: f64, node_nm: u32) -> f64 {
        let v_op = self.voltage(op_ghz, node_nm);
        let v_ref = self.voltage(ref_ghz, node_nm);
        (v_op / v_ref).powi(2)
    }
}

/// The full set of model parameters: Table I plus PU / cost / voltage models.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelParams {
    /// SRAM parameters.
    pub sram: SramParams,
    /// HBM DRAM parameters.
    pub hbm: HbmParams,
    /// Inter-chiplet PHY parameters.
    pub phy: PhyParams,
    /// Wire and link parameters.
    pub link: LinkParams,
    /// Processing-unit parameters.
    pub pu: PuParams,
    /// Fabrication cost parameters.
    pub cost: CostParams,
    /// Voltage-scaling model.
    pub voltage: VoltageModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sram_defaults() {
        let s = SramParams::default();
        assert_eq!(s.density_mb_per_mm2, 3.5);
        assert_eq!(s.access_latency_ns, 0.82);
        assert_eq!(s.read_energy_pj_per_bit, 0.18);
        assert_eq!(s.write_energy_pj_per_bit, 0.28);
        assert_eq!(s.tag_read_compare_energy_pj, 6.3);
    }

    #[test]
    fn table1_hbm_defaults() {
        let h = HbmParams::default();
        assert_eq!(h.device_capacity_gb, 8.0);
        assert_eq!(h.device_area_mm2, 110.0);
        assert_eq!(h.channels_per_device, 8);
        assert_eq!(h.channel_bandwidth_gbps, 64.0);
        assert_eq!(h.ctrl_latency_ns, 50.0);
        assert_eq!(h.access_energy_pj_per_bit, 3.7);
        assert_eq!(h.refresh_period_ms, 32.0);
        assert_eq!(h.refresh_energy_pj_per_bit, 0.22);
        // density check: 8GB on 110mm^2 ~ 75 MB/mm^2 (Table I)
        let mb_per_mm2 = h.device_capacity_gb * 1024.0 / h.device_area_mm2;
        assert!((mb_per_mm2 - 75.0).abs() < 1.0);
    }

    #[test]
    fn table1_phy_defaults() {
        let p = PhyParams::default();
        assert_eq!(p.mcm_areal_gbps_per_mm2, 690.0);
        assert_eq!(p.mcm_beachfront_gbps_per_mm, 880.0);
        assert_eq!(p.si_areal_gbps_per_mm2, 1070.0);
        assert_eq!(p.si_beachfront_gbps_per_mm, 1780.0);
    }

    #[test]
    fn table1_link_defaults() {
        let l = LinkParams::default();
        assert_eq!(l.d2d_latency_ns, 4.0);
        assert_eq!(l.d2d_energy_pj_per_bit, 0.55);
        assert_eq!(l.noc_wire_latency_ps_per_mm, 50.0);
        assert_eq!(l.noc_wire_energy_pj_per_bit_mm, 0.15);
        assert_eq!(l.noc_router_latency_ps, 500.0);
        assert_eq!(l.noc_router_energy_pj_per_bit, 0.1);
        assert_eq!(l.io_die_latency_ns, 20.0);
        assert_eq!(l.off_package_energy_pj_per_bit, 1.17);
    }

    #[test]
    fn table1_cost_defaults() {
        let c = CostParams::default();
        assert_eq!(c.wafer_cost_usd, 6047.0);
        assert_eq!(c.defect_density_per_mm2, 0.07);
        assert_eq!(c.scribe_mm, 0.2);
        assert_eq!(c.edge_loss_mm, 4.0);
        assert_eq!(c.hbm_usd_per_gb, 7.5);
    }

    #[test]
    fn voltage_model_matches_paper_formula() {
        let v = VoltageModel::default();
        // 0.06 + 0.13*2 + 0.06*5 = 0.62
        assert!((v.voltage(2.0, 5) - 0.62).abs() < 1e-12);
    }

    #[test]
    fn voltage_energy_scale_monotone_in_frequency() {
        let v = VoltageModel::default();
        let lo = v.energy_scale(0.5, 1.0, 7);
        let hi = v.energy_scale(2.0, 1.0, 7);
        assert!(lo < 1.0);
        assert!(hi > 1.0);
        assert_eq!(v.energy_scale(1.0, 1.0, 7), 1.0);
    }

    #[test]
    fn params_serde_round_trip() {
        let p = ModelParams::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: ModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
