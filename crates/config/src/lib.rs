//! # muchisim-config
//!
//! Typed configuration model for the MuchiSim manycore simulator.
//!
//! This crate defines the *design under test* (DUT): the hierarchical
//! organization of tiles into chiplets, packages, nodes and a cluster
//! (paper §III-A), the clock domains of the processing units (PUs) and
//! network-on-chip (NoC), the memory system (SRAM scratchpad or
//! PLM-as-cache backed by on-package HBM), the NoC shape, and the full set
//! of latency / energy / area / cost model parameters with the defaults of
//! Table I of the ISPASS'24 paper.
//!
//! Everything is plain serializable data: a [`SystemConfig`] can be stored
//! as JSON next to a simulation log and later re-loaded to re-run the
//! energy and cost post-processing with different parameters, mirroring the
//! `configs/` folder workflow of the original framework.
//!
//! # Example
//!
//! ```
//! use muchisim_config::{SystemConfig, NocTopology};
//!
//! # fn main() -> Result<(), muchisim_config::ConfigError> {
//! let cfg = SystemConfig::builder()
//!     .chiplet_tiles(16, 16)
//!     .noc_topology(NocTopology::FoldedTorus)
//!     .sram_kib_per_tile(256)
//!     .build()?;
//! assert_eq!(cfg.total_tiles(), 256);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod hierarchy;
mod params;
pub mod presets;
mod system;
mod telemetry;
mod traffic;
mod units;

pub use error::ConfigError;
pub use hierarchy::{Hierarchy, LinkClass, TileCoord};
pub use params::{
    CostParams, HbmParams, LinkParams, ModelParams, PhyParams, PuParams, SramParams, VoltageModel,
};
pub use system::{
    ClockDomain, DramConfig, InterposerKind, MemoryConfig, NocConfig, NocTopology, PrefetchConfig,
    QueueConfig, ReductionTreeConfig, SchedulingPolicy, SystemConfig, SystemConfigBuilder,
    Verbosity,
};
pub use telemetry::{ConvergedWard, TelemetryParams, WardMetric, WardParams};
pub use traffic::{TrafficParams, TrafficPattern};
pub use units::{Area, Energy, Frequency, TimePs};
