//! The design-under-test (DUT) configuration and its builder.

use crate::error::ConfigError;
use crate::hierarchy::{Extent, Hierarchy, LinkClass, TileCoord};
use crate::params::ModelParams;
use crate::telemetry::TelemetryParams;
use crate::traffic::TrafficParams;
use crate::units::{Frequency, TimePs};
use serde::{Deserialize, Serialize};

/// NoC topology (paper §III-A: 2D mesh and folded torus, both with
/// dimension-ordered routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NocTopology {
    /// 2D mesh.
    #[default]
    Mesh,
    /// 2D folded torus (wrap-around links in both dimensions).
    FoldedTorus,
}

/// TSU task-scheduling policy (paper §III-A).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Rotate fairly among task-type queues with pending work.
    #[default]
    RoundRobin,
    /// Always serve the lowest-listed task id with pending work first.
    ///
    /// The vector lists task ids from highest to lowest priority; ids not
    /// listed come after, in id order.
    Priority(Vec<u8>),
    /// Serve the fullest queue first, to stop full queues from
    /// back-pressuring the network.
    OccupancyBased,
}

/// How chiplets are integrated in a package (paper §III-A/§III-E).
///
/// The interposer choice affects PHY bandwidth density, PHY area, energy
/// per bit, and packaging cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InterposerKind {
    /// Chiplets on an organic substrate (MCM-style links).
    #[default]
    OrganicSubstrate,
    /// Chiplets on a passive silicon interposer.
    SiliconInterposer,
}

/// DRAM prefetching configuration (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Fetch line N+1 on access to line N.
    pub next_line: bool,
    /// Prefetch data for tasks waiting in input queues across one pointer
    /// indirection (enabled by task splitting at indirections).
    pub pointer_indirection: bool,
}

/// On-package DRAM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// HBM devices integrated with each compute chiplet.
    pub devices_per_chiplet: u32,
    /// Prefetching configuration.
    pub prefetch: PrefetchConfig,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            devices_per_chiplet: 1,
            prefetch: PrefetchConfig::default(),
        }
    }
}

/// Memory-system mode (paper §III-A "Private Local Memory").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum MemoryConfig {
    /// The tile-distributed SRAM is the system's main memory; each tile's
    /// PLM is a scratchpad holding its share of the address space.
    #[default]
    Scratchpad,
    /// The PLM acts as a write-back cache in front of on-package DRAM.
    Dram(DramConfig),
}

impl MemoryConfig {
    /// Whether DRAM is present in the design.
    pub fn has_dram(&self) -> bool {
        matches!(self, MemoryConfig::Dram(_))
    }
}

/// Reduction-tree (Tascade-style) support on the NoC (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionTreeConfig {
    /// Tiles per reduction subtree (a `k × k` block shares one root).
    pub subtree_width: u32,
}

impl Default for ReductionTreeConfig {
    fn default() -> Self {
        ReductionTreeConfig { subtree_width: 8 }
    }
}

/// Network-on-chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Topology of every physical NoC.
    pub topology: NocTopology,
    /// Link/flit width in bits (paper examples: 32, 64).
    pub width_bits: u32,
    /// Number of independent physical NoCs (paper: up to three evaluated,
    /// one per task type).
    pub num_physical: u32,
    /// Ruche channels connecting every R-th router, if any (paper §III-A).
    pub ruche_factor: Option<u32>,
    /// Router port buffer depth in flits.
    pub buffer_depth: u32,
    /// Optional reduction-tree support.
    pub reduction_tree: Option<ReductionTreeConfig>,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            topology: NocTopology::Mesh,
            width_bits: 64,
            num_physical: 1,
            ruche_factor: None,
            buffer_depth: 4,
            reduction_tree: None,
        }
    }
}

/// Sizes of the task queues mapped into the PLM (paper §III-A "Queues").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Capacity of each task-type input queue (IQ), in messages.
    pub iq_capacity: u32,
    /// Capacity of each channel queue (CQ) draining into the NoC.
    pub cq_capacity: u32,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            iq_capacity: 64,
            cq_capacity: 32,
        }
    }
}

/// Peak (design) and operating frequency of a clock domain (paper §III-C
/// "Frequency").
///
/// Peak frequency affects silicon area; operating frequency affects power
/// through voltage scaling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Peak frequency the design supports.
    pub peak: Frequency,
    /// Frequency at which the DUT is evaluated.
    pub operating: Frequency,
}

impl Default for ClockDomain {
    /// 1 GHz peak and operating (the paper's default).
    fn default() -> Self {
        ClockDomain {
            peak: Frequency::default(),
            operating: Frequency::default(),
        }
    }
}

impl ClockDomain {
    /// A domain whose peak and operating frequency are both `f`.
    pub fn at(f: Frequency) -> Self {
        ClockDomain {
            peak: f,
            operating: f,
        }
    }
}

/// Output verbosity (paper §III-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum Verbosity {
    /// Only aggregated statistics at the end of the run.
    #[default]
    V0,
    /// Aggregate metrics for each time frame.
    V1,
    /// Per-tile metrics for each frame (required for heat maps).
    V2,
    /// Also per-tile queue occupancies for every task type.
    V3,
}

/// The full design-under-test configuration.
///
/// Construct with [`SystemConfig::builder`]. All fields are public — a
/// `SystemConfig` is passive configuration data in the C-struct spirit —
/// but [`SystemConfig::validate`] should be re-run after manual edits
/// (builder-produced configs are always valid).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Tile hierarchy; the global grid is derived from it.
    pub hierarchy: Hierarchy,
    /// Processing units per tile (sharing the tile's PLM).
    pub pus_per_tile: u32,
    /// PU clock domain.
    pub pu_clock: ClockDomain,
    /// NoC clock domain (any ratio to the PU clock is supported).
    pub noc_clock: ClockDomain,
    /// Private local memory per tile, in KiB.
    pub sram_kib_per_tile: u32,
    /// Memory mode: scratchpad or PLM-as-cache over DRAM.
    pub memory: MemoryConfig,
    /// NoC configuration.
    pub noc: NocConfig,
    /// Task queue sizes.
    pub queues: QueueConfig,
    /// TSU scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Chiplet integration style.
    pub interposer: InterposerKind,
    /// How many edge tiles share one inter-node link (paper §III-A
    /// "Interconnect links").
    pub inter_node_link_mux: u32,
    /// Statistic-frame length in NoC cycles (paper §III-D "frames").
    pub frame_interval_cycles: u64,
    /// Maximum statistics frames kept in host memory per worker
    /// (clamped to ≥ 2). When the run produces more, adjacent frames are
    /// merged pairwise and the effective interval doubles (telemetry
    /// downsampling), bounding frame memory for arbitrarily long or
    /// large runs. `None` keeps every frame (the default).
    pub frame_budget: Option<u32>,
    /// Path of a JSONL file receiving every full-resolution frame as it
    /// closes (streaming spill). Works with or without `frame_budget`:
    /// full fidelity lands on disk while memory holds the (possibly
    /// downsampled) in-memory log. `None` disables spilling.
    pub frame_spill: Option<String>,
    /// Path of a JSONL file receiving the full NoC injection trace — one
    /// `(cycle, src, dst, task, payload)` event per packet entering the
    /// network — written when the run completes. A recorded trace can be
    /// replayed app-free under a different `noc.*` configuration (see the
    /// `muchisim-traffic` crate). `None` disables recording.
    pub noc_trace: Option<String>,
    /// Checkpoint cadence in NoC cycles: the parallel driver writes a
    /// full-state snapshot to `checkpoint_path` at the first executed
    /// cycle at or past each multiple (so time leaping may land the
    /// snapshot a little late, never early). `None` disables periodic
    /// checkpointing. Requires `checkpoint_path`; incompatible with
    /// `frame_budget`, `frame_spill` and `noc_trace`, whose streamed /
    /// downsampled side state is not captured by snapshots.
    pub checkpoint_every: Option<u64>,
    /// Snapshot file path (see `muchisim-core`'s `snapshot` module for
    /// the format). Writes are atomic (temp file + rename), so the file
    /// always holds the latest complete snapshot.
    pub checkpoint_path: Option<String>,
    /// Resume from `checkpoint_path` if the file exists; start fresh
    /// when it does not (so one configuration works for both the first
    /// launch and every relaunch). An existing-but-invalid file is an
    /// error, never a silent fresh start.
    pub checkpoint_resume: bool,
    /// Synthetic traffic-generator parameters (used by the traffic
    /// benchmarks; inert for ordinary applications). Sweepable like any
    /// other field: `traffic.pattern=Transpose`, `traffic.rate=0.08`.
    pub traffic: TrafficParams,
    /// Telemetry sampling cadence, metric-stream destinations, and ward
    /// stop-conditions. Default-off; absent in pre-telemetry JSON
    /// configs, which deserialize to the disabled default. Sweepable like
    /// any other field: `telemetry.sample_every=1024`,
    /// `telemetry.wards.stall_cycles=50000`.
    #[serde(default)]
    pub telemetry: TelemetryParams,
    /// Whether the cycle driver may leap over provably event-free cycle
    /// ranges instead of stepping them one by one.
    ///
    /// Leaping is an exact host-time optimization: results (runtime
    /// cycles, every counter, every statistics frame) are bit-identical
    /// with the knob on or off. It exists so ablation studies can measure
    /// the lockstep driver, and as a kill switch (`MUCHISIM_NO_LEAP`).
    pub time_leap: bool,
    /// Whether workers and NoC shards keep active-element worklists so a
    /// cycle sweeps only tiles and routers that can act, instead of the
    /// whole grid.
    ///
    /// Like `time_leap`, this is an exact host-time optimization: results
    /// are bit-identical with the knob on or off (pinned by the golden
    /// traces and the worklist determinism property test). It exists for
    /// ablation studies and as a kill switch (`MUCHISIM_NO_ACTIVE_LIST`).
    pub active_list: bool,
    /// Output verbosity.
    pub verbosity: Verbosity,
    /// Transistor technology node in nm (paper default: 7).
    pub technology_nm: u32,
    /// All latency/energy/area/cost model parameters.
    pub params: ModelParams,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            hierarchy: Hierarchy::default(),
            pus_per_tile: 1,
            pu_clock: ClockDomain::default(),
            noc_clock: ClockDomain::default(),
            sram_kib_per_tile: 128,
            memory: MemoryConfig::default(),
            noc: NocConfig::default(),
            queues: QueueConfig::default(),
            scheduling: SchedulingPolicy::default(),
            interposer: InterposerKind::default(),
            inter_node_link_mux: 1,
            frame_interval_cycles: 40_000,
            frame_budget: None,
            frame_spill: None,
            noc_trace: None,
            checkpoint_every: None,
            checkpoint_path: None,
            checkpoint_resume: false,
            traffic: TrafficParams::default(),
            telemetry: TelemetryParams::default(),
            time_leap: true,
            active_list: true,
            verbosity: Verbosity::default(),
            technology_nm: 7,
            params: ModelParams::default(),
        }
    }
}

impl SystemConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::new()
    }

    /// Global grid width in tiles.
    pub fn width(&self) -> u32 {
        self.hierarchy.grid_width()
    }

    /// Global grid height in tiles.
    pub fn height(&self) -> u32 {
        self.hierarchy.grid_height()
    }

    /// Total tiles in the system.
    pub fn total_tiles(&self) -> u64 {
        self.hierarchy.total_tiles()
    }

    /// Total PUs in the system.
    pub fn total_pus(&self) -> u64 {
        self.total_tiles() * self.pus_per_tile as u64
    }

    /// Network diameter in hops for the configured topology.
    pub fn network_diameter(&self) -> u32 {
        let w = self.width();
        let h = self.height();
        match self.noc.topology {
            NocTopology::Mesh => (w - 1) + (h - 1),
            NocTopology::FoldedTorus => w / 2 + h / 2,
        }
    }

    /// The extra idle-confirmation cycles added by the hardware
    /// termination-detection condition (paper §III-C: 2 × diameter).
    pub fn termination_latency_cycles(&self) -> u64 {
        2 * self.network_diameter() as u64
    }

    /// Flit payload width in bytes.
    pub fn flit_bytes(&self) -> u32 {
        self.noc.width_bits / 8
    }

    /// Number of flits needed to carry `bytes` of message payload plus a
    /// one-flit destination header.
    ///
    /// ```
    /// use muchisim_config::SystemConfig;
    /// let cfg = SystemConfig::default(); // 64-bit NoC
    /// assert_eq!(cfg.flits_for_message(16), 3); // header + 2 payload flits
    /// ```
    pub fn flits_for_message(&self, bytes: u32) -> u32 {
        1 + bytes.div_ceil(self.flit_bytes())
    }

    /// Classifies the link crossed between two tile coordinates.
    pub fn link_class(&self, a: TileCoord, b: TileCoord) -> LinkClass {
        self.hierarchy.link_class(a, b)
    }

    /// Extra latency (beyond the router traversal) for one hop over `class`,
    /// in NoC cycles of the operating clock.
    pub fn hop_extra_cycles(&self, class: LinkClass) -> u64 {
        let link = &self.params.link;
        let extra = match class {
            LinkClass::OnChip => TimePs::ZERO,
            LinkClass::DieToDie => TimePs::ns(link.d2d_latency_ns),
            LinkClass::OffPackage => TimePs::ns(link.d2d_latency_ns + link.io_die_latency_ns),
            LinkClass::InterNode => TimePs::ns(
                link.d2d_latency_ns + link.io_die_latency_ns + link.inter_node_latency_ns,
            ),
        };
        self.noc_clock.operating.cycles_for_ps(extra.as_ps())
    }

    /// SRAM access latency for this tile size, in PU cycles, applying the
    /// bank-scaling latency model (paper §III-D: +1 ns per quadrupling step
    /// beyond 512 KiB).
    pub fn sram_latency_cycles(&self) -> u64 {
        let s = &self.params.sram;
        let mut latency_ns = s.access_latency_ns;
        let mut cap = s.latency_step_threshold_kib;
        while cap < self.sram_kib_per_tile {
            cap *= 4;
            latency_ns += s.latency_step_ns;
        }
        self.pu_clock
            .operating
            .cycles_for_ps(TimePs::ns(latency_ns).as_ps())
    }

    /// Tiles sharing one DRAM channel, or `None` in scratchpad mode.
    pub fn tiles_per_dram_channel(&self) -> Option<u64> {
        match &self.memory {
            MemoryConfig::Scratchpad => None,
            MemoryConfig::Dram(d) => {
                let channels = (d.devices_per_chiplet * self.params.hbm.channels_per_device) as u64;
                Some(self.hierarchy.tiles_per_chiplet() / channels.max(1))
            }
        }
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; builder-produced configs
    /// have already passed this check.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.hierarchy.validate()?;
        if self.pus_per_tile == 0 {
            return Err(ConfigError::NoPus);
        }
        if self.sram_kib_per_tile == 0 {
            return Err(ConfigError::NoSram);
        }
        if self.noc.width_bits == 0 || !self.noc.width_bits.is_multiple_of(8) {
            return Err(ConfigError::InvalidNocWidth {
                bits: self.noc.width_bits,
            });
        }
        if self.noc.num_physical == 0 {
            return Err(ConfigError::NoNocs);
        }
        if let Some(r) = self.noc.ruche_factor {
            if r < 2 || !self.hierarchy.chiplet.x.is_multiple_of(r) {
                return Err(ConfigError::InvalidRucheFactor { factor: r });
            }
        }
        if self.queues.iq_capacity == 0 {
            return Err(ConfigError::EmptyQueue { queue: "input" });
        }
        if self.queues.cq_capacity == 0 {
            return Err(ConfigError::EmptyQueue { queue: "channel" });
        }
        if self.pu_clock.operating > self.pu_clock.peak {
            return Err(ConfigError::OperatingAbovePeak { domain: "pu" });
        }
        if self.noc_clock.operating > self.noc_clock.peak {
            return Err(ConfigError::OperatingAbovePeak { domain: "noc" });
        }
        if let MemoryConfig::Dram(d) = &self.memory {
            if d.devices_per_chiplet == 0 || self.params.hbm.channels_per_device == 0 {
                return Err(ConfigError::NoDramChannels);
            }
        }
        if self.inter_node_link_mux == 0 {
            return Err(ConfigError::ZeroLinkMux);
        }
        if self.checkpoint_every == Some(0) {
            return Err(ConfigError::Checkpoint {
                why: "checkpoint_every must be at least 1 cycle",
            });
        }
        if self.checkpoint_every.is_some() && self.checkpoint_path.is_none() {
            return Err(ConfigError::Checkpoint {
                why: "checkpoint_every requires checkpoint_path",
            });
        }
        if self.checkpoint_resume && self.checkpoint_path.is_none() {
            return Err(ConfigError::Checkpoint {
                why: "checkpoint_resume requires checkpoint_path",
            });
        }
        if self.checkpoint_every.is_some() || self.checkpoint_resume {
            if self.frame_budget.is_some() {
                return Err(ConfigError::Checkpoint {
                    why: "checkpointing is incompatible with frame_budget",
                });
            }
            if self.frame_spill.is_some() {
                return Err(ConfigError::Checkpoint {
                    why: "checkpointing is incompatible with frame_spill",
                });
            }
            if self.noc_trace.is_some() {
                return Err(ConfigError::Checkpoint {
                    why: "checkpointing is incompatible with noc_trace",
                });
            }
        }
        self.traffic.validate()?;
        self.telemetry.validate()?;
        if self.telemetry.snapshot_on_trip {
            if self.checkpoint_path.is_none() {
                return Err(ConfigError::Telemetry {
                    why: "snapshot_on_trip requires checkpoint_path",
                });
            }
            if !self.telemetry.enabled() {
                return Err(ConfigError::Telemetry {
                    why: "snapshot_on_trip requires an enabled ward or metrics stream",
                });
            }
        }
        Ok(())
    }
}

/// Builder for [`SystemConfig`] (C-BUILDER, non-consuming).
#[derive(Debug, Clone, Default)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Starts from [`SystemConfig::default`].
    pub fn new() -> Self {
        SystemConfigBuilder {
            cfg: SystemConfig::default(),
        }
    }

    /// Sets tiles per chiplet.
    pub fn chiplet_tiles(&mut self, x: u32, y: u32) -> &mut Self {
        self.cfg.hierarchy.chiplet = Extent::new(x, y);
        self
    }

    /// Sets chiplets per package.
    pub fn package_chiplets(&mut self, x: u32, y: u32) -> &mut Self {
        self.cfg.hierarchy.package = Extent::new(x, y);
        self
    }

    /// Sets packages per node.
    pub fn node_packages(&mut self, x: u32, y: u32) -> &mut Self {
        self.cfg.hierarchy.node = Extent::new(x, y);
        self
    }

    /// Sets nodes in the cluster.
    pub fn cluster_nodes(&mut self, x: u32, y: u32) -> &mut Self {
        self.cfg.hierarchy.cluster = Extent::new(x, y);
        self
    }

    /// Sets PUs per tile.
    pub fn pus_per_tile(&mut self, n: u32) -> &mut Self {
        self.cfg.pus_per_tile = n;
        self
    }

    /// Sets PU peak and operating frequency together.
    pub fn pu_frequency(&mut self, f: Frequency) -> &mut Self {
        self.cfg.pu_clock = ClockDomain::at(f);
        self
    }

    /// Sets the PU clock domain explicitly.
    pub fn pu_clock(&mut self, clock: ClockDomain) -> &mut Self {
        self.cfg.pu_clock = clock;
        self
    }

    /// Sets NoC peak and operating frequency together.
    pub fn noc_frequency(&mut self, f: Frequency) -> &mut Self {
        self.cfg.noc_clock = ClockDomain::at(f);
        self
    }

    /// Sets the NoC clock domain explicitly.
    pub fn noc_clock(&mut self, clock: ClockDomain) -> &mut Self {
        self.cfg.noc_clock = clock;
        self
    }

    /// Sets SRAM per tile in KiB.
    pub fn sram_kib_per_tile(&mut self, kib: u32) -> &mut Self {
        self.cfg.sram_kib_per_tile = kib;
        self
    }

    /// Selects scratchpad memory mode (no DRAM).
    pub fn scratchpad(&mut self) -> &mut Self {
        self.cfg.memory = MemoryConfig::Scratchpad;
        self
    }

    /// Selects cache-over-DRAM memory mode.
    pub fn dram(&mut self, dram: DramConfig) -> &mut Self {
        self.cfg.memory = MemoryConfig::Dram(dram);
        self
    }

    /// Sets the NoC topology.
    pub fn noc_topology(&mut self, topology: NocTopology) -> &mut Self {
        self.cfg.noc.topology = topology;
        self
    }

    /// Sets the NoC link width in bits.
    pub fn noc_width_bits(&mut self, bits: u32) -> &mut Self {
        self.cfg.noc.width_bits = bits;
        self
    }

    /// Sets the number of physical NoCs.
    pub fn physical_nocs(&mut self, n: u32) -> &mut Self {
        self.cfg.noc.num_physical = n;
        self
    }

    /// Enables Ruche channels every `factor` routers.
    pub fn ruche_factor(&mut self, factor: u32) -> &mut Self {
        self.cfg.noc.ruche_factor = Some(factor);
        self
    }

    /// Sets router buffer depth in flits.
    pub fn buffer_depth(&mut self, depth: u32) -> &mut Self {
        self.cfg.noc.buffer_depth = depth;
        self
    }

    /// Enables Tascade-style reduction trees.
    pub fn reduction_tree(&mut self, cfg: ReductionTreeConfig) -> &mut Self {
        self.cfg.noc.reduction_tree = Some(cfg);
        self
    }

    /// Sets task queue capacities.
    pub fn queues(&mut self, iq: u32, cq: u32) -> &mut Self {
        self.cfg.queues = QueueConfig {
            iq_capacity: iq,
            cq_capacity: cq,
        };
        self
    }

    /// Sets the TSU scheduling policy.
    pub fn scheduling(&mut self, policy: SchedulingPolicy) -> &mut Self {
        self.cfg.scheduling = policy;
        self
    }

    /// Sets the chiplet integration style.
    pub fn interposer(&mut self, kind: InterposerKind) -> &mut Self {
        self.cfg.interposer = kind;
        self
    }

    /// Sets the inter-node link multiplexing factor.
    pub fn inter_node_link_mux(&mut self, mux: u32) -> &mut Self {
        self.cfg.inter_node_link_mux = mux;
        self
    }

    /// Sets the statistics frame interval in NoC cycles.
    pub fn frame_interval_cycles(&mut self, cycles: u64) -> &mut Self {
        self.cfg.frame_interval_cycles = cycles;
        self
    }

    /// Bounds in-memory statistics frames per worker (≥ 2); overflowing
    /// frames merge pairwise (downsampling).
    pub fn frame_budget(&mut self, budget: u32) -> &mut Self {
        self.cfg.frame_budget = Some(budget);
        self
    }

    /// Streams every full-resolution frame to a JSONL file at `path`.
    pub fn frame_spill(&mut self, path: impl Into<String>) -> &mut Self {
        self.cfg.frame_spill = Some(path.into());
        self
    }

    /// Records the NoC injection trace to a JSONL file at `path`.
    pub fn noc_trace(&mut self, path: impl Into<String>) -> &mut Self {
        self.cfg.noc_trace = Some(path.into());
        self
    }

    /// Enables periodic checkpointing: a snapshot to `path` roughly
    /// every `every` NoC cycles.
    pub fn checkpoint(&mut self, path: impl Into<String>, every: u64) -> &mut Self {
        self.cfg.checkpoint_path = Some(path.into());
        self.cfg.checkpoint_every = Some(every);
        self
    }

    /// Resumes from `checkpoint_path` when the snapshot file exists.
    pub fn checkpoint_resume(&mut self, enabled: bool) -> &mut Self {
        self.cfg.checkpoint_resume = enabled;
        self
    }

    /// Replaces the synthetic-traffic parameters.
    pub fn traffic(&mut self, traffic: TrafficParams) -> &mut Self {
        self.cfg.traffic = traffic;
        self
    }

    /// Replaces the telemetry/ward parameters.
    pub fn telemetry(&mut self, telemetry: TelemetryParams) -> &mut Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Enables or disables the time-leaping cycle driver (default on).
    pub fn time_leap(&mut self, enabled: bool) -> &mut Self {
        self.cfg.time_leap = enabled;
        self
    }

    /// Enables or disables the active-tile/router worklists (default on).
    pub fn active_list(&mut self, enabled: bool) -> &mut Self {
        self.cfg.active_list = enabled;
        self
    }

    /// Sets the output verbosity.
    pub fn verbosity(&mut self, v: Verbosity) -> &mut Self {
        self.cfg.verbosity = v;
        self
    }

    /// Sets the technology node in nm.
    pub fn technology_nm(&mut self, nm: u32) -> &mut Self {
        self.cfg.technology_nm = nm;
        self
    }

    /// Replaces the full model parameter set.
    pub fn params(&mut self, params: ModelParams) -> &mut Self {
        self.cfg.params = params;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid setting.
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SystemConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_builds_a_torus_multi_chiplet() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(16, 16)
            .package_chiplets(2, 2)
            .noc_topology(NocTopology::FoldedTorus)
            .sram_kib_per_tile(256)
            .build()
            .unwrap();
        assert_eq!(cfg.total_tiles(), 32 * 32);
        assert_eq!(cfg.network_diameter(), 32);
    }

    #[test]
    fn mesh_diameter() {
        let cfg = SystemConfig::default(); // 32x32 mesh
        assert_eq!(cfg.network_diameter(), 62);
        assert_eq!(cfg.termination_latency_cycles(), 124);
    }

    #[test]
    fn flit_count_includes_header() {
        let cfg = SystemConfig::builder().noc_width_bits(32).build().unwrap();
        assert_eq!(cfg.flits_for_message(4), 2);
        assert_eq!(cfg.flits_for_message(5), 3);
        assert_eq!(cfg.flits_for_message(0), 1);
    }

    #[test]
    fn invalid_noc_width_rejected() {
        let err = SystemConfig::builder()
            .noc_width_bits(12)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidNocWidth { bits: 12 });
    }

    #[test]
    fn ruche_factor_must_divide_chiplet_width() {
        let err = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .ruche_factor(5)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidRucheFactor { factor: 5 });
        assert!(SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .ruche_factor(4)
            .build()
            .is_ok());
    }

    #[test]
    fn operating_above_peak_rejected() {
        let mut b = SystemConfig::builder();
        b.pu_clock(ClockDomain {
            peak: Frequency::ghz(1.0),
            operating: Frequency::ghz(2.0),
        });
        assert_eq!(
            b.build().unwrap_err(),
            ConfigError::OperatingAbovePeak { domain: "pu" }
        );
    }

    #[test]
    fn sram_latency_scales_beyond_threshold() {
        let small = SystemConfig::builder()
            .sram_kib_per_tile(256)
            .build()
            .unwrap();
        // 0.82ns at 1GHz -> 1 cycle
        assert_eq!(small.sram_latency_cycles(), 1);
        let big = SystemConfig::builder()
            .sram_kib_per_tile(1024)
            .build()
            .unwrap();
        // beyond 512KiB: +1ns -> 1.82ns -> 2 cycles
        assert_eq!(big.sram_latency_cycles(), 2);
        let huge = SystemConfig::builder()
            .sram_kib_per_tile(4096)
            .build()
            .unwrap();
        // two quadrupling steps: 2.82ns -> 3 cycles
        assert_eq!(huge.sram_latency_cycles(), 3);
    }

    #[test]
    fn tiles_per_dram_channel() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        assert_eq!(cfg.tiles_per_dram_channel(), Some(128));
        let spm = SystemConfig::default();
        assert_eq!(spm.tiles_per_dram_channel(), None);
    }

    #[test]
    fn hop_extra_cycles_ordered_by_link_class() {
        let cfg = SystemConfig::default();
        let on = cfg.hop_extra_cycles(LinkClass::OnChip);
        let d2d = cfg.hop_extra_cycles(LinkClass::DieToDie);
        let off = cfg.hop_extra_cycles(LinkClass::OffPackage);
        let node = cfg.hop_extra_cycles(LinkClass::InterNode);
        assert_eq!(on, 0);
        assert_eq!(d2d, 4); // 4ns at 1GHz
        assert_eq!(off, 24); // + 20ns I/O die
        assert!(node > off);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(8, 8)
            .dram(DramConfig::default())
            .ruche_factor(2)
            .scheduling(SchedulingPolicy::Priority(vec![1, 0]))
            .build()
            .unwrap();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn time_leap_defaults_on_and_is_toggleable() {
        assert!(SystemConfig::default().time_leap);
        let cfg = SystemConfig::builder().time_leap(false).build().unwrap();
        assert!(!cfg.time_leap);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.time_leap);
    }

    #[test]
    fn active_list_defaults_on_and_is_toggleable() {
        assert!(SystemConfig::default().active_list);
        let cfg = SystemConfig::builder().active_list(false).build().unwrap();
        assert!(!cfg.active_list);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.active_list);
    }

    #[test]
    fn frame_streaming_knobs_default_off_and_round_trip() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.frame_budget, None);
        assert_eq!(cfg.frame_spill, None);
        let cfg = SystemConfig::builder()
            .frame_budget(512)
            .frame_spill("target/frames.jsonl")
            .build()
            .unwrap();
        assert_eq!(cfg.frame_budget, Some(512));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.frame_budget, Some(512));
        assert_eq!(back.frame_spill.as_deref(), Some("target/frames.jsonl"));
    }

    #[test]
    fn traffic_and_trace_knobs_default_and_round_trip() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.noc_trace, None);
        assert_eq!(cfg.traffic, crate::TrafficParams::default());
        let traffic = crate::TrafficParams {
            pattern: crate::TrafficPattern::Transpose,
            rate: 0.25,
            ..crate::TrafficParams::default()
        };
        let cfg = SystemConfig::builder()
            .traffic(traffic.clone())
            .noc_trace("target/noc.trace.jsonl")
            .build()
            .unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.traffic, traffic);
        assert_eq!(back.noc_trace.as_deref(), Some("target/noc.trace.jsonl"));
        // invalid traffic parameters fail whole-config validation
        let mut bad = SystemConfig::default();
        bad.traffic.rate = 7.0;
        assert_eq!(
            bad.validate().unwrap_err(),
            ConfigError::Traffic {
                why: "rate must be a finite value in [0, 1]"
            }
        );
    }

    #[test]
    fn telemetry_knobs_default_round_trip_and_cross_validate() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.telemetry, crate::TelemetryParams::default());
        // a config serialized before the telemetry field existed still loads
        let mut value = Serialize::to_value(&cfg);
        if let serde::value::Value::Object(m) = &mut value {
            assert!(m.remove("telemetry").is_some());
        }
        let back = SystemConfig::from_value(&value).unwrap();
        assert_eq!(back.telemetry, crate::TelemetryParams::default());
        // the builder + whole-config validation path
        let telemetry = crate::TelemetryParams {
            sample_every: Some(512),
            wards: crate::WardParams {
                stall_cycles: Some(20_000),
                ..crate::WardParams::default()
            },
            ..crate::TelemetryParams::default()
        };
        let cfg = SystemConfig::builder()
            .telemetry(telemetry.clone())
            .build()
            .unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let round: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(round.telemetry, telemetry);
        // snapshot_on_trip needs a checkpoint path to dump into
        let mut bad = cfg;
        bad.telemetry.snapshot_on_trip = true;
        assert_eq!(
            bad.validate().unwrap_err(),
            ConfigError::Telemetry {
                why: "snapshot_on_trip requires checkpoint_path"
            }
        );
        bad.checkpoint_path = Some("target/trip.snap".into());
        assert!(bad.validate().is_ok());
    }

    #[test]
    fn scheduling_default_is_round_robin() {
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::RoundRobin);
    }

    #[test]
    fn torus_diameter_half_of_mesh() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(16, 16)
            .noc_topology(NocTopology::FoldedTorus)
            .build()
            .unwrap();
        assert_eq!(cfg.network_diameter(), 16);
    }
}
