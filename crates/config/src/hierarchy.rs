//! The hierarchical organization of tiles (paper §III-A, Fig. 1).
//!
//! A cluster is a grid of nodes; a node (board) is a grid of chip packages;
//! a package is a grid of compute chiplets; a chiplet is a grid of tiles.
//! For simulation the whole system is viewed as one *global grid of tiles*
//! (paper §III-C); the hierarchy determines which physical link class a hop
//! between two adjacent tiles crosses (on-chip wire, die-to-die PHY,
//! off-package I/O, or inter-node link) for latency / energy accounting.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coordinates of a tile in the global grid.
///
/// `x` grows eastwards (columns), `y` grows southwards (rows).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TileCoord {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl TileCoord {
    /// Creates a coordinate.
    pub fn new(x: u32, y: u32) -> Self {
        TileCoord { x, y }
    }

    /// Linear tile id in a grid `width` tiles wide (row-major).
    pub fn id(self, width: u32) -> u32 {
        self.y * width + self.x
    }

    /// Inverse of [`TileCoord::id`].
    pub fn from_id(id: u32, width: u32) -> Self {
        TileCoord {
            x: id % width,
            y: id / width,
        }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: TileCoord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// The physical class of the link crossed by a hop between adjacent tiles.
///
/// Each class has distinct latency and energy parameters (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// A regular NoC wire between two tiles on the same chiplet.
    OnChip,
    /// A die-to-die PHY crossing between chiplets in the same package.
    DieToDie,
    /// An off-package link between packages on the same board.
    OffPackage,
    /// A board-to-board link between cluster nodes.
    InterNode,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::OnChip => "on-chip",
            LinkClass::DieToDie => "die-to-die",
            LinkClass::OffPackage => "off-package",
            LinkClass::InterNode => "inter-node",
        };
        f.write_str(s)
    }
}

/// A rectangular extent, `x` units wide and `y` units tall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Extent {
    /// Width in units of the contained level.
    pub x: u32,
    /// Height in units of the contained level.
    pub y: u32,
}

impl Extent {
    /// Creates an extent.
    pub fn new(x: u32, y: u32) -> Self {
        Extent { x, y }
    }

    /// Total units contained.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64
    }
}

/// The four-level tile hierarchy (chiplet ⊂ package ⊂ node ⊂ cluster).
///
/// The global tile grid is *derived*: its width is
/// `chiplet.x · package.x · node.x · cluster.x` and similarly for height,
/// so a hierarchy is always self-consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    /// Tiles per compute chiplet.
    pub chiplet: Extent,
    /// Chiplets per chip package.
    pub package: Extent,
    /// Packages per cluster node (board).
    pub node: Extent,
    /// Nodes in the cluster.
    pub cluster: Extent,
}

impl Default for Hierarchy {
    /// A single 32×32-tile chiplet in one package on one node.
    fn default() -> Self {
        Hierarchy {
            chiplet: Extent::new(32, 32),
            package: Extent::new(1, 1),
            node: Extent::new(1, 1),
            cluster: Extent::new(1, 1),
        }
    }
}

impl Hierarchy {
    /// Validates that every level is non-empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, e) in [
            ("chiplet", self.chiplet),
            ("package", self.package),
            ("node", self.node),
            ("cluster", self.cluster),
        ] {
            if e.x == 0 || e.y == 0 {
                return Err(ConfigError::EmptyExtent { level: name });
            }
        }
        Ok(())
    }

    /// Global grid width in tiles.
    pub fn grid_width(&self) -> u32 {
        self.chiplet.x * self.package.x * self.node.x * self.cluster.x
    }

    /// Global grid height in tiles.
    pub fn grid_height(&self) -> u32 {
        self.chiplet.y * self.package.y * self.node.y * self.cluster.y
    }

    /// Total number of tiles in the system.
    pub fn total_tiles(&self) -> u64 {
        self.grid_width() as u64 * self.grid_height() as u64
    }

    /// Total number of compute chiplets in the system.
    pub fn total_chiplets(&self) -> u64 {
        self.package.count() * self.node.count() * self.cluster.count()
    }

    /// Total number of chip packages in the system.
    pub fn total_packages(&self) -> u64 {
        self.node.count() * self.cluster.count()
    }

    /// Total number of cluster nodes.
    pub fn total_nodes(&self) -> u64 {
        self.cluster.count()
    }

    /// Tiles per chiplet.
    pub fn tiles_per_chiplet(&self) -> u64 {
        self.chiplet.count()
    }

    /// Index of the chiplet (in chiplet-grid coordinates) containing `t`.
    pub fn chiplet_of(&self, t: TileCoord) -> (u32, u32) {
        (t.x / self.chiplet.x, t.y / self.chiplet.y)
    }

    /// Index of the package (in package-grid coordinates) containing `t`.
    pub fn package_of(&self, t: TileCoord) -> (u32, u32) {
        (
            t.x / (self.chiplet.x * self.package.x),
            t.y / (self.chiplet.y * self.package.y),
        )
    }

    /// Index of the node (in node-grid coordinates) containing `t`.
    pub fn node_of(&self, t: TileCoord) -> (u32, u32) {
        (
            t.x / (self.chiplet.x * self.package.x * self.node.x),
            t.y / (self.chiplet.y * self.package.y * self.node.y),
        )
    }

    /// Classifies the physical link crossed by a hop between tiles `a` and
    /// `b`.
    ///
    /// The tiles need not be grid-adjacent (torus wrap links also cross
    /// chiplet/package/node boundaries and are classified the same way):
    /// the *highest* hierarchy boundary crossed determines the class.
    pub fn link_class(&self, a: TileCoord, b: TileCoord) -> LinkClass {
        if self.node_of(a) != self.node_of(b) {
            LinkClass::InterNode
        } else if self.package_of(a) != self.package_of(b) {
            LinkClass::OffPackage
        } else if self.chiplet_of(a) != self.chiplet_of(b) {
            LinkClass::DieToDie
        } else {
            LinkClass::OnChip
        }
    }

    /// Network diameter (maximum Manhattan hop distance) of the global grid
    /// for a mesh; a torus halves each dimension's contribution.
    pub fn mesh_diameter(&self) -> u32 {
        (self.grid_width() - 1) + (self.grid_height() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> Hierarchy {
        // 4x4-tile chiplets, 2x2 chiplets per package, 2x1 packages per
        // node, 1x2 nodes: grid is (4*2*2*1) x (4*2*1*2) = 16 x 16 tiles.
        Hierarchy {
            chiplet: Extent::new(4, 4),
            package: Extent::new(2, 2),
            node: Extent::new(2, 1),
            cluster: Extent::new(1, 2),
        }
    }

    #[test]
    fn grid_dims_derived() {
        let h = two_by_two();
        assert_eq!(h.grid_width(), 16);
        assert_eq!(h.grid_height(), 16);
        assert_eq!(h.total_tiles(), 256);
        assert_eq!(h.total_chiplets(), 2 * 2 * 2 * 2);
        assert_eq!(h.total_packages(), 2 * 2);
        assert_eq!(h.total_nodes(), 2);
    }

    #[test]
    fn tile_id_round_trip() {
        let c = TileCoord::new(3, 5);
        let id = c.id(16);
        assert_eq!(id, 83);
        assert_eq!(TileCoord::from_id(id, 16), c);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(TileCoord::new(0, 0).manhattan(TileCoord::new(3, 4)), 7);
        assert_eq!(TileCoord::new(3, 4).manhattan(TileCoord::new(0, 0)), 7);
    }

    #[test]
    fn link_classification_on_chip() {
        let h = two_by_two();
        assert_eq!(
            h.link_class(TileCoord::new(0, 0), TileCoord::new(1, 0)),
            LinkClass::OnChip
        );
        assert_eq!(
            h.link_class(TileCoord::new(2, 2), TileCoord::new(2, 3)),
            LinkClass::OnChip
        );
    }

    #[test]
    fn link_classification_die_to_die() {
        let h = two_by_two();
        // x=3 -> chiplet 0, x=4 -> chiplet 1 (same package: package.x covers
        // 4*2=8 tiles).
        assert_eq!(
            h.link_class(TileCoord::new(3, 0), TileCoord::new(4, 0)),
            LinkClass::DieToDie
        );
    }

    #[test]
    fn link_classification_off_package() {
        let h = two_by_two();
        // package boundary at x=8 (within node 0: node.x covers 16 tiles).
        assert_eq!(
            h.link_class(TileCoord::new(7, 0), TileCoord::new(8, 0)),
            LinkClass::OffPackage
        );
    }

    #[test]
    fn link_classification_inter_node() {
        let h = two_by_two();
        // node boundary in y at 8 (node.y covers 4*2*1 = 8 tiles).
        assert_eq!(
            h.link_class(TileCoord::new(0, 7), TileCoord::new(0, 8)),
            LinkClass::InterNode
        );
    }

    #[test]
    fn torus_wrap_link_is_highest_boundary() {
        let h = two_by_two();
        // Wrap link from x=15 to x=0 crosses package boundary.
        assert_eq!(
            h.link_class(TileCoord::new(15, 0), TileCoord::new(0, 0)),
            LinkClass::OffPackage
        );
        // Wrap in y crosses node boundary.
        assert_eq!(
            h.link_class(TileCoord::new(0, 15), TileCoord::new(0, 0)),
            LinkClass::InterNode
        );
    }

    #[test]
    fn monolithic_hierarchy_all_on_chip() {
        let h = Hierarchy::default();
        assert_eq!(
            h.link_class(TileCoord::new(0, 0), TileCoord::new(31, 31)),
            LinkClass::OnChip
        );
    }

    #[test]
    fn validate_rejects_empty() {
        let h = Hierarchy {
            package: Extent::new(0, 1),
            ..Hierarchy::default()
        };
        assert!(h.validate().is_err());
    }

    #[test]
    fn diameter() {
        let h = two_by_two();
        assert_eq!(h.mesh_diameter(), 30);
    }
}
